#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace privim {

namespace {

// Geometric skipping for sparse G(n,p): next arc index gap ~ Geometric(p).
// Avoids O(n^2) coin flips for small p.
size_t GeometricSkip(double p, Rng& rng) {
  if (p >= 1.0) return 0;
  double u = 0.0;
  do {
    u = rng.Uniform();
  } while (u <= 0.0);
  return static_cast<size_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Status EmitErdosRenyi(size_t n, double p, bool directed, Rng& rng,
                      EdgeSink& sink) {
  if (p <= 0.0) return Status::OK();
  if (directed) {
    // Iterate over ordered pairs (u, v), u != v, via geometric skipping.
    const size_t total = n * (n - 1);
    size_t idx = GeometricSkip(p, rng);
    while (idx < total) {
      const NodeId u = static_cast<NodeId>(idx / (n - 1));
      size_t col = idx % (n - 1);
      const NodeId v = static_cast<NodeId>(col >= u ? col + 1 : col);
      PRIVIM_RETURN_NOT_OK(sink.Add(u, v));
      idx += 1 + GeometricSkip(p, rng);
    }
  } else {
    const size_t total = n * (n - 1) / 2;
    size_t idx = GeometricSkip(p, rng);
    while (idx < total) {
      // Map linear index to an unordered pair (u < v).
      const double d = static_cast<double>(idx);
      size_t u = static_cast<size_t>(
          std::floor((2.0 * n - 1.0 -
                      std::sqrt((2.0 * n - 1.0) * (2.0 * n - 1.0) -
                                8.0 * d)) /
                     2.0));
      // Correct floating point drift.
      auto row_start = [&](size_t r) { return r * n - r * (r + 1) / 2; };
      while (u + 1 < n && row_start(u + 1) <= idx) ++u;
      while (u > 0 && row_start(u) > idx) --u;
      const size_t v = u + 1 + (idx - row_start(u));
      PRIVIM_RETURN_NOT_OK(sink.AddUndirected(static_cast<NodeId>(u),
                                              static_cast<NodeId>(v)));
      idx += 1 + GeometricSkip(p, rng);
    }
  }
  return Status::OK();
}

Status EmitBarabasiAlbert(size_t n, size_t m, Rng& rng, EdgeSink& sink) {
  // repeated_nodes holds one entry per half-edge, so uniform sampling from
  // it is degree-proportional sampling. It is the algorithm's working state
  // — 4 bytes per half-edge, live only for the duration of one emission
  // pass — not a materialized edge list (the old 16-byte-per-arc buffer
  // this generator streamed away).
  std::vector<NodeId> repeated_nodes;
  repeated_nodes.reserve(2 * n * m);
  // Seed clique over the first m+1 nodes keeps early degrees non-degenerate.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      PRIVIM_RETURN_NOT_OK(sink.AddUndirected(u, v));
      repeated_nodes.push_back(u);
      repeated_nodes.push_back(v);
    }
  }
  for (NodeId u = static_cast<NodeId>(m + 1); u < n; ++u) {
    std::unordered_set<NodeId> targets;
    while (targets.size() < m) {
      const NodeId t = repeated_nodes[rng.UniformInt(repeated_nodes.size())];
      if (t != u) targets.insert(t);
    }
    for (NodeId t : targets) {
      PRIVIM_RETURN_NOT_OK(sink.AddUndirected(u, t));
      repeated_nodes.push_back(u);
      repeated_nodes.push_back(t);
    }
  }
  return Status::OK();
}

Status EmitPlantedPartition(size_t n, size_t num_communities, double p_in,
                            double p_out, Rng& rng, EdgeSink& sink) {
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t cu = static_cast<uint32_t>(u % num_communities);
    for (NodeId v = u + 1; v < n; ++v) {
      const uint32_t cv = static_cast<uint32_t>(v % num_communities);
      const double p = cu == cv ? p_in : p_out;
      if (rng.Bernoulli(p)) {
        PRIVIM_RETURN_NOT_OK(sink.AddUndirected(u, v));
      }
    }
  }
  return Status::OK();
}

Status EmitDirectedScaleFree(size_t n, size_t m_out, size_t m_in, Rng& rng,
                             EdgeSink& sink) {
  const size_t seed = std::min(n, std::max<size_t>(m_out, m_in) + 2);
  std::vector<NodeId> in_pool;   // One entry per in-degree unit (+1 smoothing).
  std::vector<NodeId> out_pool;  // One entry per out-degree unit (+1).
  std::unordered_set<uint64_t> seen;
  auto key = [](NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  auto add_arc = [&](NodeId s, NodeId d) -> Status {
    if (s == d || seen.contains(key(s, d))) return Status::OK();
    seen.insert(key(s, d));
    PRIVIM_RETURN_NOT_OK(sink.Add(s, d));
    in_pool.push_back(d);
    out_pool.push_back(s);
    return Status::OK();
  };
  // Seed: directed ring over the first `seed` nodes.
  for (NodeId u = 0; u < seed; ++u) {
    PRIVIM_RETURN_NOT_OK(add_arc(u, static_cast<NodeId>((u + 1) % seed)));
  }
  for (NodeId u = static_cast<NodeId>(seed); u < n; ++u) {
    for (size_t j = 0; j < m_out; ++j) {
      // +1 smoothing: with small probability pick a uniform node so new
      // nodes are reachable as targets.
      NodeId t;
      if (in_pool.empty() || rng.Bernoulli(0.15)) {
        t = static_cast<NodeId>(rng.UniformInt(u));
      } else {
        t = in_pool[rng.UniformInt(in_pool.size())];
      }
      PRIVIM_RETURN_NOT_OK(add_arc(u, t));
    }
    for (size_t j = 0; j < m_in; ++j) {
      NodeId s;
      if (out_pool.empty() || rng.Bernoulli(0.15)) {
        s = static_cast<NodeId>(rng.UniformInt(u));
      } else {
        s = out_pool[rng.UniformInt(out_pool.size())];
      }
      PRIVIM_RETURN_NOT_OK(add_arc(s, u));
    }
  }
  return Status::OK();
}

}  // namespace

EdgeStream ReplayableStream(Rng& rng,
                            std::function<Status(Rng&, EdgeSink&)> emit) {
  // The counting pass (first invocation) draws from a snapshot so the
  // caller's rng is untouched; the placement pass (second invocation)
  // replays the identical sequence on the caller's rng itself. Net effect:
  // both passes see the same draws and the caller's rng ends advanced
  // exactly once, as if the stream had run single-pass.
  return [&rng, emit = std::move(emit), calls = 0](EdgeSink& sink) mutable
         -> Status {
    Rng snapshot = rng;
    Rng& use = calls++ == 0 ? snapshot : rng;
    return emit(use, sink);
  };
}

Result<Graph> ErdosRenyi(size_t n, double p, bool directed, Rng& rng,
                         const GraphBuildOptions& options) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  PRIVIM_RETURN_NOT_OK(ValidateNodeCount(n));
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("p must lie in [0,1]");
  }
  GraphBuilder builder(n);
  PRIVIM_RETURN_NOT_OK(builder.AddEdgeStream(
      ReplayableStream(rng, [n, p, directed](Rng& r, EdgeSink& sink) {
        return EmitErdosRenyi(n, p, directed, r, sink);
      })));
  return builder.Build(options);
}

Result<Graph> BarabasiAlbert(size_t n, size_t m, Rng& rng,
                             const GraphBuildOptions& options) {
  if (m == 0 || n <= m) {
    return Status::InvalidArgument(
        StrFormat("BarabasiAlbert requires 0 < m < n, got m=%zu n=%zu", m,
                  n));
  }
  PRIVIM_RETURN_NOT_OK(ValidateNodeCount(n));
  GraphBuilder builder(n);
  PRIVIM_RETURN_NOT_OK(builder.AddEdgeStream(
      ReplayableStream(rng, [n, m](Rng& r, EdgeSink& sink) {
        return EmitBarabasiAlbert(n, m, r, sink);
      })));
  return builder.Build(options);
}

Result<Graph> WattsStrogatz(size_t n, size_t k, double beta, Rng& rng,
                            const GraphBuildOptions& options) {
  if (k == 0 || 2 * k >= n) {
    return Status::InvalidArgument(
        StrFormat("WattsStrogatz requires 0 < 2k < n, got k=%zu n=%zu", k,
                  n));
  }
  PRIVIM_RETURN_NOT_OK(ValidateNodeCount(n));
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("beta must lie in [0,1]");
  }
  // Rewiring needs random-access adjacency, so this generator's working
  // state is the adjacency itself. Build it once (on the counting pass,
  // advancing the caller's rng exactly once) and emit from the cached sets
  // on both passes — iteration order over an untouched unordered_set is
  // stable within a process, so the two passes match.
  auto adj = std::make_shared<std::vector<std::unordered_set<NodeId>>>();
  auto stream = [n, k, beta, &rng, adj](EdgeSink& sink) -> Status {
    if (adj->empty()) {
      adj->resize(n);
      auto has = [&](NodeId a, NodeId b) { return (*adj)[a].contains(b); };
      auto add = [&](NodeId a, NodeId b) {
        (*adj)[a].insert(b);
        (*adj)[b].insert(a);
      };
      auto remove = [&](NodeId a, NodeId b) {
        (*adj)[a].erase(b);
        (*adj)[b].erase(a);
      };
      for (NodeId u = 0; u < n; ++u) {
        for (size_t j = 1; j <= k; ++j) {
          add(u, static_cast<NodeId>((u + j) % n));
        }
      }
      for (NodeId u = 0; u < n; ++u) {
        for (size_t j = 1; j <= k; ++j) {
          const NodeId v = static_cast<NodeId>((u + j) % n);
          if (!has(u, v) || !rng.Bernoulli(beta)) continue;
          // Rewire (u, v) to (u, w) for a random non-adjacent w.
          NodeId w = u;
          int attempts = 0;
          do {
            w = static_cast<NodeId>(rng.UniformInt(n));
          } while ((w == u || has(u, w)) && ++attempts < 64);
          if (w == u || has(u, w)) continue;  // Dense node; keep the edge.
          remove(u, v);
          add(u, w);
        }
      }
    }
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : (*adj)[u]) {
        if (u < v) PRIVIM_RETURN_NOT_OK(sink.AddUndirected(u, v));
      }
    }
    return Status::OK();
  };
  GraphBuilder builder(n);
  PRIVIM_RETURN_NOT_OK(builder.AddEdgeStream(std::move(stream)));
  return builder.Build(options);
}

Result<Graph> PlantedPartition(size_t n, size_t num_communities, double p_in,
                               double p_out, Rng& rng,
                               const GraphBuildOptions& options) {
  if (num_communities == 0 || num_communities > n) {
    return Status::InvalidArgument("invalid community count");
  }
  PRIVIM_RETURN_NOT_OK(ValidateNodeCount(n));
  if (p_in < 0 || p_in > 1 || p_out < 0 || p_out > 1) {
    return Status::InvalidArgument("probabilities must lie in [0,1]");
  }
  GraphBuilder builder(n);
  PRIVIM_RETURN_NOT_OK(builder.AddEdgeStream(ReplayableStream(
      rng, [n, num_communities, p_in, p_out](Rng& r, EdgeSink& sink) {
        return EmitPlantedPartition(n, num_communities, p_in, p_out, r, sink);
      })));
  return builder.Build(options);
}

Result<Graph> DirectedScaleFree(size_t n, size_t m_out, size_t m_in, Rng& rng,
                                const GraphBuildOptions& options) {
  if (n < 2 || m_out == 0) {
    return Status::InvalidArgument("DirectedScaleFree requires n>=2, m_out>0");
  }
  PRIVIM_RETURN_NOT_OK(ValidateNodeCount(n));
  GraphBuilder builder(n);
  PRIVIM_RETURN_NOT_OK(builder.AddEdgeStream(
      ReplayableStream(rng, [n, m_out, m_in](Rng& r, EdgeSink& sink) {
        return EmitDirectedScaleFree(n, m_out, m_in, r, sink);
      })));
  return builder.Build(options);
}

Result<Graph> WeightedCascade(const Graph& g,
                              const GraphBuildOptions& options) {
  if (!g.has_in_csr()) {
    return Status::FailedPrecondition(
        "WeightedCascade requires in-degrees; call Graph::EnsureInCsr() on "
        "graphs built without the in-CSR");
  }
  GraphBuilder builder(g.num_nodes());
  PRIVIM_RETURN_NOT_OK(builder.AddEdgeStream([&g](EdgeSink& sink) {
    return g.ForEachEdge([&g, &sink](NodeId u, NodeId v, float) {
      const size_t in_deg = g.InDegree(v);
      const float w = in_deg > 0 ? 1.0f / static_cast<float>(in_deg) : 1.0f;
      return sink.Add(u, v, w);
    });
  }));
  return builder.Build(options);
}

Result<Graph> WithUniformWeights(const Graph& g, float w,
                                 const GraphBuildOptions& options) {
  if (w < 0.0f || w > 1.0f) {
    return Status::InvalidArgument("weight must lie in [0,1]");
  }
  GraphBuilder builder(g.num_nodes());
  PRIVIM_RETURN_NOT_OK(builder.AddEdgeStream([&g, w](EdgeSink& sink) {
    return g.ForEachEdge([&sink, w](NodeId u, NodeId v, float) {
      return sink.Add(u, v, w);
    });
  }));
  return builder.Build(options);
}

}  // namespace privim
