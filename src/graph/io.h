#ifndef PRIVIM_GRAPH_IO_H_
#define PRIVIM_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace privim {

/// Loads a graph from a whitespace-separated edge list. Each non-comment line
/// is `src dst [weight]`; lines starting with '#' or '%' are skipped. Node
/// ids may be sparse; they are densified in first-appearance order.
/// If `undirected`, each line adds both arcs. `options` controls the built
/// CSR layout — pass `build_in_csr = false` to load out-adjacency only
/// (half the arc storage; see Graph::EnsureInCsr).
Result<Graph> LoadEdgeList(const std::string& path, bool undirected = false,
                           const GraphBuildOptions& options = {});

/// Parses an edge list from an in-memory string (same format as
/// LoadEdgeList). Mostly useful for tests.
Result<Graph> ParseEdgeList(const std::string& text, bool undirected = false,
                            const GraphBuildOptions& options = {});

/// Writes `g` as a `src dst weight` edge list with a header comment.
Status SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace privim

#endif  // PRIVIM_GRAPH_IO_H_
