#ifndef PRIVIM_GRAPH_UPDATE_STREAM_H_
#define PRIVIM_GRAPH_UPDATE_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph_delta.h"
#include "graph/graph_view.h"

namespace privim {

/// Timestamped graph-update events — the input language of the dynamic
/// pipeline (docs/streaming.md). Events are applied to a GraphDelta in
/// stream order; the apply layer reports exactly which adjacency rows
/// changed, which drives the incremental RR-sketch / hop-ball repairs.

enum class UpdateKind : uint32_t {
  kAddEdge = 0,
  kRemoveEdge = 1,
  kAddNode = 2,
  kRemoveNode = 3,
};

struct UpdateEvent {
  UpdateKind kind = UpdateKind::kAddEdge;
  /// Edge endpoints for kAddEdge/kRemoveEdge; `u` is the node for
  /// kRemoveNode; both ignored for kAddNode (ids are assigned densely).
  NodeId u = 0;
  NodeId v = 0;
  float weight = 1.0f;
  /// Event time (opaque to the pipeline beyond ordering; the drivers use
  /// a per-event sequence number).
  int64_t timestamp = 0;

  bool operator==(const UpdateEvent&) const = default;
};

/// One replay unit: the pipeline applies a batch, repairs caches, checks
/// the retrain policy, and commits a checkpoint — batch boundaries are the
/// stream's only commit points.
struct UpdateBatch {
  uint64_t index = 0;
  std::vector<UpdateEvent> events;
};

/// What applying a batch changed — the exact inputs of the invalidation
/// pass (RrSketch::Repair wants changed *in*-rows, HopBallCache wants
/// changed *out*-rows) and of the drift-triggered retrain policy.
struct ApplyEffects {
  /// Nodes whose out-/in-adjacency rows differ from before the batch;
  /// sorted, duplicate-free.
  std::vector<NodeId> changed_out_rows;
  std::vector<NodeId> changed_in_rows;
  /// Arc mutations applied (each edge add/remove counts one; a node
  /// removal counts every arc it drops).
  uint64_t changed_arcs = 0;
  uint64_t applied_events = 0;
  /// Events that were visible no-ops (adding an arc that already exists,
  /// removing one that does not). Real streams carry these; they are
  /// counted and skipped, never errors.
  uint64_t skipped_events = 0;
  /// True when the node count changed (forces a full sketch rebuild —
  /// every RR target draw shifts).
  bool node_count_changed = false;
};

/// Applies `batch` to `delta` in event order. Out-of-range endpoints,
/// self-loops, and bad weights fail the whole batch (a malformed stream
/// should stop the pipeline, not half-apply); already-exists / not-found
/// conditions are counted as skipped.
Result<ApplyEffects> ApplyUpdateBatch(GraphDelta& delta,
                                      const UpdateBatch& batch);

/// Synthetic update-stream generator for drivers, benches, and tests.
struct StreamGenConfig {
  size_t events_per_batch = 64;
  /// Fraction of events that add an edge; the rest remove one (an
  /// existing visible arc when the sampled source has any, otherwise the
  /// event degrades to an add).
  double add_fraction = 0.6;
  /// Fraction of events that add / isolate a node (carved out of the edge
  /// fractions; both default off).
  double add_node_fraction = 0.0;
  double remove_node_fraction = 0.0;
};

/// Batch `batch_index` of the synthetic stream: a pure function of
/// (view content, batch_index, stream_seed, config) via
/// Rng::FromStreamKey(stream_seed, batch_index) — no generator state to
/// checkpoint, so a resumed pipeline regenerates the exact forward stream
/// from its batch counter alone (docs/streaming.md).
UpdateBatch MakeSyntheticBatch(const GraphView& view, uint64_t batch_index,
                               uint64_t stream_seed,
                               const StreamGenConfig& config);

}  // namespace privim

#endif  // PRIVIM_GRAPH_UPDATE_STREAM_H_
