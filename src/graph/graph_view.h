#ifndef PRIVIM_GRAPH_GRAPH_VIEW_H_
#define PRIVIM_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"

namespace privim {

/// The single read seam over a possibly-mutated graph: a `GraphView`
/// presents either a plain immutable `Graph` or a `Graph` + `GraphDelta`
/// overlay through one adjacency interface, so no consumer can silently
/// bypass the delta by reading base rows directly (docs/api.md marks this
/// type stable; docs/streaming.md has the design).
///
/// Ordering contract: `ForEachOutEdge` / `ForEachInEdge` visit neighbors
/// in strictly ascending id order — the exact order the compacted CSR
/// would present — by two-pointer-merging the base row (minus removals)
/// with the overlay's sorted additions. Anything that consumes RNG draws
/// per visited arc (the RR-sketch generator's per-in-edge Bernoulli
/// draws) therefore sees a draw sequence bit-identical to running on
/// `GraphDelta::Compact()`'s output. That equivalence is what makes
/// incremental sketch repair exact rather than approximate, and it is
/// pinned by tests/stream/.
///
/// Views are cheap value types (two pointers); pass by value or const
/// reference. The base graph (and delta, when present) must outlive the
/// view. A view over a delta must use the delta's own base graph.
class GraphView {
 public:
  /// Passthrough view of an immutable graph (no overlay).
  explicit GraphView(const Graph& base) : base_(&base), delta_(nullptr) {}

  /// View of `base` as mutated by `delta` (nullptr = passthrough).
  GraphView(const Graph& base, const GraphDelta* delta)
      : base_(&base), delta_(delta) {
    PRIVIM_CHECK(delta == nullptr || &delta->base() == &base)
        << "GraphView delta overlays a different base graph";
  }

  size_t num_nodes() const {
    return delta_ != nullptr ? delta_->num_nodes() : base_->num_nodes();
  }
  EdgeId num_edges() const {
    return delta_ != nullptr ? delta_->num_edges() : base_->num_edges();
  }

  const Graph& base() const { return *base_; }
  const GraphDelta* delta() const { return delta_; }
  /// True when reads can diverge from the base (a non-empty overlay).
  bool has_overlay() const { return delta_ != nullptr && !delta_->empty(); }

  /// True if the arc u -> v is visible through the view.
  bool HasEdge(NodeId u, NodeId v) const {
    return delta_ != nullptr ? delta_->HasEdge(u, v)
                             : base_->HasEdge(u, v);
  }

  size_t OutDegree(NodeId u) const {
    if (delta_ == nullptr) return base_->OutDegree(u);
    size_t deg = u < base_->num_nodes() ? base_->OutDegree(u) : 0;
    if (const GraphDelta::Row* row = delta_->OutRow(u)) {
      deg += row->added.size();
      deg -= row->removed.size();
    }
    return deg;
  }
  /// Requires the base in-CSR (GraphDelta's constructor enforces it for
  /// overlaid views; plain views inherit Graph's own check).
  size_t InDegree(NodeId v) const {
    if (delta_ == nullptr) return base_->InDegree(v);
    size_t deg = v < base_->num_nodes() ? base_->InDegree(v) : 0;
    if (const GraphDelta::Row* row = delta_->InRow(v)) {
      deg += row->added.size();
      deg -= row->removed.size();
    }
    return deg;
  }

  /// Visits u's visible out-neighbors as fn(v, weight) in ascending v.
  /// `fn` may return void, or Status to stop early on error; the loop's
  /// Status is OK unless `fn` failed.
  template <typename Fn>
  Status ForEachOutEdge(NodeId u, Fn&& fn) const {
    const GraphDelta::Row* row =
        delta_ != nullptr ? delta_->OutRow(u) : nullptr;
    const bool in_base = u < base_->num_nodes();
    if (row == nullptr) {
      if (!in_base) return Status::OK();  // added node, still isolated
      return PlainRow(base_->OutNeighbors(u), base_->OutWeights(u), fn);
    }
    std::span<const NodeId> ids;
    std::span<const float> ws;
    if (in_base) {
      ids = base_->OutNeighbors(u);
      ws = base_->OutWeights(u);
    }
    return MergeRow(ids, ws, *row, fn);
  }

  /// Visits v's visible in-neighbors as fn(u, weight) in ascending u.
  /// Requires the base in-CSR.
  template <typename Fn>
  Status ForEachInEdge(NodeId v, Fn&& fn) const {
    const GraphDelta::Row* row =
        delta_ != nullptr ? delta_->InRow(v) : nullptr;
    const bool in_base = v < base_->num_nodes();
    if (row == nullptr) {
      if (!in_base) return Status::OK();
      return PlainRow(base_->InNeighbors(v), base_->InWeights(v), fn);
    }
    std::span<const NodeId> ids;
    std::span<const float> ws;
    if (in_base) {
      ids = base_->InNeighbors(v);
      ws = base_->InWeights(v);
    }
    return MergeRow(ids, ws, *row, fn);
  }

  /// Visits every visible arc as fn(u, v, weight), u ascending then v
  /// ascending — the view-level analogue of Graph::ForEachEdge. `fn` may
  /// return void or Status.
  template <typename Fn>
  Status ForEachEdge(Fn&& fn) const {
    const size_t n = num_nodes();
    for (size_t u = 0; u < n; ++u) {
      PRIVIM_RETURN_NOT_OK(ForEachOutEdge(
          static_cast<NodeId>(u), [&fn, u](NodeId v, float w) {
            return InvokeArc(fn, static_cast<NodeId>(u), v, w);
          }));
    }
    return Status::OK();
  }

  /// Identity fingerprint for caches keyed on "same view as last time":
  /// the base graph's fingerprint mixed with the delta's address and
  /// mutation version, so every overlay mutation changes it. Same
  /// non-content-hash caveats as Graph::IdentityFingerprint.
  uint64_t IdentityFingerprint() const {
    uint64_t h = base_->IdentityFingerprint();
    if (delta_ != nullptr) {
      auto mix = [&h](uint64_t x) {
        h ^= x;
        h *= 0x100000001b3ULL;
      };
      mix(reinterpret_cast<uintptr_t>(delta_));
      mix(delta_->version());
    }
    return h;
  }

 private:
  template <typename Fn>
  static Status InvokeEdge(Fn& fn, NodeId id, float w) {
    if constexpr (std::is_void_v<std::invoke_result_t<Fn&, NodeId, float>>) {
      fn(id, w);
      return Status::OK();
    } else {
      return fn(id, w);
    }
  }
  template <typename Fn>
  static Status InvokeArc(Fn& fn, NodeId u, NodeId v, float w) {
    if constexpr (std::is_void_v<
                      std::invoke_result_t<Fn&, NodeId, NodeId, float>>) {
      fn(u, v, w);
      return Status::OK();
    } else {
      return fn(u, v, w);
    }
  }

  template <typename Fn>
  static Status PlainRow(std::span<const NodeId> ids,
                         std::span<const float> ws, Fn& fn) {
    for (size_t i = 0; i < ids.size(); ++i) {
      PRIVIM_RETURN_NOT_OK(InvokeEdge(fn, ids[i], ws[i]));
    }
    return Status::OK();
  }

  /// Two-pointer merge of a base row (skipping `row.removed`) with
  /// `row.added`. The delta invariants make the two sides disjoint, so
  /// the output is strictly ascending — no equal-key case exists.
  template <typename Fn>
  static Status MergeRow(std::span<const NodeId> ids,
                         std::span<const float> ws,
                         const GraphDelta::Row& row, Fn& fn) {
    size_t bi = 0;
    size_t ai = 0;
    size_t ri = 0;
    while (bi < ids.size() || ai < row.added.size()) {
      if (bi < ids.size()) {
        while (ri < row.removed.size() && row.removed[ri] < ids[bi]) ++ri;
        if (ri < row.removed.size() && row.removed[ri] == ids[bi]) {
          ++bi;
          ++ri;
          continue;
        }
      }
      const bool take_base =
          bi < ids.size() &&
          (ai >= row.added.size() || ids[bi] < row.added[ai].first);
      if (take_base) {
        PRIVIM_RETURN_NOT_OK(InvokeEdge(fn, ids[bi], ws[bi]));
        ++bi;
      } else {
        PRIVIM_RETURN_NOT_OK(
            InvokeEdge(fn, row.added[ai].first, row.added[ai].second));
        ++ai;
      }
    }
    return Status::OK();
  }

  const Graph* base_;
  const GraphDelta* delta_;
};

}  // namespace privim

#endif  // PRIVIM_GRAPH_GRAPH_VIEW_H_
