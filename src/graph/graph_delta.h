#ifndef PRIVIM_GRAPH_GRAPH_DELTA_H_
#define PRIVIM_GRAPH_GRAPH_DELTA_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace privim {

/// Mutable overlay on an immutable CSR `Graph`: absorbs edge/node
/// insertions and deletions without touching the base arrays, and
/// periodically compacts back into a fresh CSR through the streaming
/// two-pass build (`GraphBuilder::AddEdgeStream` — no edge list is ever
/// materialized, so compaction keeps the 1.2x-of-CSR peak-memory contract
/// of docs/scale.md).
///
/// All reads of the mutated graph go through `GraphView` (graph_view.h),
/// which merges base rows with the overlay in ascending neighbor order —
/// the same order the compacted CSR would present, so RNG draw sequences
/// over view rows are bit-identical to draws over the compacted graph
/// (the property the incremental RR-sketch repair relies on;
/// docs/streaming.md).
///
/// INTERNAL: the row representation below (`Row`, the touched-row maps)
/// is an implementation detail exposed only so GraphView can merge
/// without an indirection per arc. Out-of-tree code should hold a
/// GraphDelta only to mutate it and hand it to GraphView / the stream
/// pipeline (docs/api.md).
///
/// Not thread-safe for mutation. Concurrent *reads* (through GraphView)
/// are safe once mutation stops, same as Graph.
class GraphDelta {
 public:
  /// One overlaid adjacency row. Invariants (checked in debug builds,
  /// relied on by GraphView's merge):
  ///  - `added` is sorted by neighbor id, duplicate-free, and disjoint
  ///    from the *visible* base row (base row minus `removed`);
  ///  - `removed` is sorted, duplicate-free, and a subset of the base row.
  /// Re-adding a previously removed base arc therefore keeps the id in
  /// `removed` AND records the (id, new weight) pair in `added` — which is
  /// what lets a re-add carry a different weight than the base copy.
  struct Row {
    std::vector<std::pair<NodeId, float>> added;
    std::vector<NodeId> removed;
  };

  /// The base must have its in-CSR (RemoveNode and GraphView's in-edge
  /// merges scan in-rows). The delta borrows the base; the caller keeps it
  /// alive and unmodified for the delta's lifetime (or until ResetBase).
  explicit GraphDelta(const Graph& base);

  /// Adds the visible arc u -> v. Same validation as GraphBuilder::AddEdge
  /// (ids in range of the *current* node count, no self-loops, weight in
  /// [0, 1]) plus AlreadyExists when the arc is already visible.
  Status AddEdge(NodeId u, NodeId v, float weight = 1.0f);

  /// Removes the visible arc u -> v; NotFound when it is not visible.
  Status RemoveEdge(NodeId u, NodeId v);

  /// Appends a new isolated node and returns its id (== the node count
  /// before the call). Fails when the grown count exceeds kMaxNodeCount.
  Result<NodeId> AddNode();

  /// Removes every visible arc incident to u (both directions). The id
  /// itself stays valid-but-isolated: CSR ids are dense, so physically
  /// retiring an id would renumber every structure keyed on NodeId
  /// (features, sketches, seed sets). Isolation is the standard dynamic-
  /// graph compromise and is what compaction preserves (docs/streaming.md).
  Status RemoveNode(NodeId u);

  /// Current node count (base nodes + nodes added through AddNode).
  size_t num_nodes() const { return base_->num_nodes() + added_nodes_; }
  /// Current visible arc count.
  EdgeId num_edges() const {
    return base_->num_edges() + added_arcs_ - removed_arcs_;
  }
  const Graph& base() const { return *base_; }

  /// True if u -> v is visible (base arc not removed, or overlay arc).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Overlay row for u's out-edges / v's in-edges; nullptr when the row is
  /// untouched (the common case — GraphView's fast path).
  const Row* OutRow(NodeId u) const { return FindRow(out_, u); }
  const Row* InRow(NodeId v) const { return FindRow(in_, v); }

  bool OutRowTouched(NodeId u) const { return OutRow(u) != nullptr; }
  bool InRowTouched(NodeId v) const { return InRow(v) != nullptr; }

  /// Arcs added / removed relative to the base (overlay sizes, not
  /// event counts: add-then-remove of the same arc nets out to zero).
  EdgeId added_arcs() const { return added_arcs_; }
  EdgeId removed_arcs() const { return removed_arcs_; }
  size_t added_nodes() const { return added_nodes_; }
  bool empty() const {
    return added_arcs_ == 0 && removed_arcs_ == 0 && added_nodes_ == 0;
  }

  /// Monotone mutation counter: bumps on every successful AddEdge /
  /// RemoveEdge / AddNode / RemoveNode and on ResetBase. GraphView mixes it
  /// into its fingerprint so caches keyed on the view invalidate whenever
  /// the overlay changes.
  uint64_t version() const { return version_; }

  /// Visits overlay arcs in deterministic (ascending u, then ascending v)
  /// order — the order the stream checkpoint serializes them in. `fn` is
  /// fn(u, v, weight) for added arcs, fn(u, v) for removed ones.
  template <typename Fn>
  void ForEachAddedEdge(Fn&& fn) const {
    for (NodeId u : SortedTouchedOut()) {
      for (const auto& [v, w] : out_.at(u).added) fn(u, v, w);
    }
  }
  template <typename Fn>
  void ForEachRemovedEdge(Fn&& fn) const {
    for (NodeId u : SortedTouchedOut()) {
      for (NodeId v : out_.at(u).removed) fn(u, v);
    }
  }

  /// Builds the merged graph (base + overlay) as a fresh CSR via the
  /// streaming two-pass build; the overlay itself is left untouched.
  /// The result always carries its in-CSR (the streaming pipeline's
  /// samplers need it immediately).
  Result<Graph> Compact() const { return Compact(GraphBuildOptions{}); }
  Result<Graph> Compact(const GraphBuildOptions& options) const;

  /// Clears the overlay and points the delta at `new_base` — the handoff
  /// after compaction. `new_base` must have its in-CSR and at least as
  /// many nodes as the delta currently covers.
  Status ResetBase(const Graph& new_base);

 private:
  using RowMap = std::unordered_map<NodeId, Row>;

  static const Row* FindRow(const RowMap& rows, NodeId id) {
    auto it = rows.find(id);
    return it == rows.end() ? nullptr : &it->second;
  }

  Status ValidateEndpoints(NodeId u, NodeId v) const;
  /// Touched out-row ids in ascending order (deterministic iteration over
  /// the unordered map).
  std::vector<NodeId> SortedTouchedOut() const;

  /// Drops `id`'s map entry if it became empty (keeps the touched-row
  /// predicate exact, which the invalidation pass depends on).
  static void PruneIfEmpty(RowMap& rows, NodeId id);

  const Graph* base_;
  RowMap out_;
  RowMap in_;
  size_t added_nodes_ = 0;
  EdgeId added_arcs_ = 0;
  EdgeId removed_arcs_ = 0;
  uint64_t version_ = 0;
};

}  // namespace privim

#endif  // PRIVIM_GRAPH_GRAPH_DELTA_H_
