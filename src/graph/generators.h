#ifndef PRIVIM_GRAPH_GENERATORS_H_
#define PRIVIM_GRAPH_GENERATORS_H_

#include <cstddef>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace privim {

/// Random-graph generators used to synthesize stand-ins for the paper's
/// real-world datasets (see DESIGN.md, substitution table). All generators
/// are deterministic given the Rng state.
///
/// Every generator streams its edges straight into the two-pass CSR build
/// (GraphBuilder::AddEdgeStream) instead of materializing an edge list, so
/// generating a 10^7-node / 10^8-arc graph peaks within ~1.1x of the final
/// CSR footprint (docs/scale.md). `options` controls the built graph's
/// layout — pass `build_in_csr = false` when only out-edge scans are needed
/// (RWR walks, IC cascades) to halve the arc storage.

/// G(n, p) Erdős–Rényi. `directed` controls whether each ordered pair is an
/// independent arc or each unordered pair becomes two mirrored arcs.
Result<Graph> ErdosRenyi(size_t n, double p, bool directed, Rng& rng,
                         const GraphBuildOptions& options = {});

/// Barabási–Albert preferential attachment: each new node attaches to `m`
/// existing nodes chosen proportionally to degree. Produces a power-law
/// degree distribution like most social networks. Undirected arcs mirrored.
Result<Graph> BarabasiAlbert(size_t n, size_t m, Rng& rng,
                             const GraphBuildOptions& options = {});

/// Watts–Strogatz small world: ring lattice with `k` neighbors per side,
/// rewired with probability `beta`. Undirected arcs mirrored.
Result<Graph> WattsStrogatz(size_t n, size_t k, double beta, Rng& rng,
                            const GraphBuildOptions& options = {});

/// Planted-partition community graph: `num_communities` equal blocks,
/// within-block edge probability `p_in`, cross-block `p_out`. Undirected.
Result<Graph> PlantedPartition(size_t n, size_t num_communities, double p_in,
                               double p_out, Rng& rng,
                               const GraphBuildOptions& options = {});

/// Directed scale-free graph via a directed preferential-attachment process:
/// each new node emits `m_out` arcs to targets chosen by in-degree
/// preference and receives `m_in` arcs from sources chosen by out-degree
/// preference. Models trust/communication networks (Email, Bitcoin).
Result<Graph> DirectedScaleFree(size_t n, size_t m_out, size_t m_in, Rng& rng,
                                const GraphBuildOptions& options = {});

/// Assigns IC influence probabilities to an existing topology using the
/// weighted-cascade convention w_uv = 1/in_degree(v), a standard IM
/// benchmark weighting. Returns a re-weighted copy. Requires `g` to carry
/// its in-CSR (call Graph::EnsureInCsr() first on out-only graphs).
Result<Graph> WeightedCascade(const Graph& g,
                              const GraphBuildOptions& options = {});

/// Returns a copy of `g` with every arc weight set to `w`.
Result<Graph> WithUniformWeights(const Graph& g, float w,
                                 const GraphBuildOptions& options = {});

/// Wraps an rng-driven edge emitter into a replayable EdgeStream: the first
/// invocation (the builder's counting pass) runs on a snapshot of `rng`,
/// the second (the placement pass) on `rng` itself, so both passes see the
/// identical draw sequence and the caller's generator state ends advanced
/// exactly once — bit-identical to a single-pass materialized build. `rng`
/// must outlive the returned stream.
EdgeStream ReplayableStream(
    Rng& rng, std::function<Status(Rng&, EdgeSink&)> emit);

}  // namespace privim

#endif  // PRIVIM_GRAPH_GENERATORS_H_
