#include "sampling/container.h"

#include <algorithm>

#include "common/string_util.h"

namespace privim {

void SubgraphContainer::Merge(SubgraphContainer&& other) {
  subgraphs_.reserve(subgraphs_.size() + other.subgraphs_.size());
  for (Subgraph& s : other.subgraphs_) {
    subgraphs_.push_back(std::move(s));
  }
  other.subgraphs_.clear();
}

Result<const Subgraph*> SubgraphContainer::Get(size_t i) const {
  if (i >= subgraphs_.size()) {
    return Status::OutOfRange(StrFormat(
        "subgraphs[%zu] out of range: container holds %zu subgraphs", i,
        subgraphs_.size()));
  }
  return &subgraphs_[i];
}

Result<std::vector<size_t>> SubgraphContainer::OccurrenceHistogram(
    size_t num_original_nodes) const {
  std::vector<size_t> hist(num_original_nodes, 0);
  for (size_t i = 0; i < subgraphs_.size(); ++i) {
    const Subgraph& sub = subgraphs_[i];
    for (size_t j = 0; j < sub.nodes.size(); ++j) {
      const NodeId u = sub.nodes[j];
      if (u >= num_original_nodes) {
        return Status::OutOfRange(StrFormat(
            "subgraphs[%zu].nodes[%zu] = %u out of range: the original "
            "graph has %zu nodes",
            i, j, u, num_original_nodes));
      }
      ++hist[u];
    }
  }
  return hist;
}

Result<size_t> SubgraphContainer::MaxOccurrence(
    size_t num_original_nodes) const {
  PRIVIM_ASSIGN_OR_RETURN(const std::vector<size_t> hist,
                          OccurrenceHistogram(num_original_nodes));
  size_t max_occ = 0;
  for (size_t h : hist) max_occ = std::max(max_occ, h);
  return max_occ;
}

}  // namespace privim
