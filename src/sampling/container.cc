#include "sampling/container.h"

#include <algorithm>

#include "common/logging.h"

namespace privim {

void SubgraphContainer::Merge(SubgraphContainer&& other) {
  subgraphs_.reserve(subgraphs_.size() + other.subgraphs_.size());
  for (Subgraph& s : other.subgraphs_) {
    subgraphs_.push_back(std::move(s));
  }
  other.subgraphs_.clear();
}

std::vector<size_t> SubgraphContainer::OccurrenceHistogram(
    size_t num_original_nodes) const {
  std::vector<size_t> hist(num_original_nodes, 0);
  for (const Subgraph& sub : subgraphs_) {
    for (NodeId u : sub.nodes) {
      PRIVIM_CHECK_LT(u, num_original_nodes);
      ++hist[u];
    }
  }
  return hist;
}

size_t SubgraphContainer::MaxOccurrence(size_t num_original_nodes) const {
  const std::vector<size_t> hist = OccurrenceHistogram(num_original_nodes);
  size_t max_occ = 0;
  for (size_t h : hist) max_occ = std::max(max_occ, h);
  return max_occ;
}

}  // namespace privim
