#include "sampling/rwr_sampler.h"

#include <string>
#include <unordered_set>

#include "graph/algorithms.h"
#include "graph/subgraph.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_streams.h"
#include "runtime/runtime.h"

namespace privim {

namespace {

/// Outcome of one start node's walk: nothing, a subgraph, or an induction
/// error (surfaced in start order). Walk statistics ride along and are
/// folded into the metrics registry only at commit time so the counts do
/// not depend on the thread count.
struct WalkOutcome {
  bool produced = false;
  /// The walk got past the sampling-rate gate and actually stepped.
  bool attempted = false;
  /// Restarts forced by an empty candidate set.
  uint64_t dead_ends = 0;
  Status status = Status::OK();
  Subgraph sub;
};

}  // namespace

RwrSampler::RwrSampler(RwrConfig config) : config_(std::move(config)) {}

Result<SubgraphContainer> RwrSampler::Extract(
    const Graph& g, Rng& rng, const std::vector<NodeId>* restrict_to) const {
  if (config_.subgraph_size < 2) {
    return Status::InvalidArgument("subgraph size must be at least 2");
  }
  if (config_.sampling_rate <= 0.0 || config_.sampling_rate > 1.0) {
    return Status::InvalidArgument("sampling rate must lie in (0,1]");
  }
  SubgraphContainer container;

  std::unordered_set<NodeId> allowed;
  if (restrict_to != nullptr) {
    // Validate before walking: an unchecked start id would index past the
    // end of the per-node hop_dist vector below (out-of-bounds write).
    for (NodeId v : *restrict_to) {
      if (v >= g.num_nodes()) {
        return Status::InvalidArgument(
            "restrict_to contains node id " + std::to_string(v) +
            " but the graph has only " + std::to_string(g.num_nodes()) +
            " nodes");
      }
    }
    allowed.insert(restrict_to->begin(), restrict_to->end());
  }
  auto is_allowed = [&](NodeId v) {
    return restrict_to == nullptr || allowed.contains(v);
  };

  std::vector<NodeId> starts;
  if (restrict_to != nullptr) {
    starts = *restrict_to;
  } else {
    starts.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
  }

  // Walks are mutually independent (Algorithm 1 has no cross-walk state),
  // so each start node i runs against its own child stream `streams.
  // Stream(i)` and the results are committed in start order — the outcome
  // is a pure function of (graph, seed), not of the thread count.
  RngStreams streams(rng);

  // One walk, fully self-contained. Returns through `out`.
  auto run_walk = [&](size_t i, WalkOutcome& out) {
    const NodeId v0 = starts[i];
    Rng walk_rng = streams.Stream(i);
    if (!walk_rng.Bernoulli(config_.sampling_rate)) return;
    out.attempted = true;

    // Precompute the r-hop ball N_r(v0) once per walk (the walk's target
    // filter, Algorithm 1 Line 10).
    std::vector<int> hop_dist(g.num_nodes(), -1);
    {
      std::vector<NodeId> frontier{v0};
      hop_dist[v0] = 0;
      for (int h = 0; h < config_.hop_bound && !frontier.empty(); ++h) {
        std::vector<NodeId> next;
        for (NodeId u : frontier) {
          for (NodeId w : g.OutNeighbors(u)) {
            if (hop_dist[w] < 0) {
              hop_dist[w] = h + 1;
              next.push_back(w);
            }
          }
        }
        frontier = std::move(next);
      }
    }

    std::unordered_set<NodeId> in_sub;
    std::vector<NodeId> sub_nodes;
    std::vector<NodeId> candidates;
    in_sub.insert(v0);
    sub_nodes.push_back(v0);
    NodeId cur = v0;

    for (size_t l = 0; l < config_.walk_length; ++l) {
      if (walk_rng.Bernoulli(config_.restart_prob)) cur = v0;
      // Next node from N(cur) ∩ N_r(v0), uniformly.
      candidates.clear();
      for (NodeId w : g.OutNeighbors(cur)) {
        if (hop_dist[w] >= 0 && is_allowed(w)) candidates.push_back(w);
      }
      if (candidates.empty()) {
        ++out.dead_ends;
        cur = v0;  // Dead end: restart.
        continue;
      }
      const NodeId next = candidates[walk_rng.UniformInt(candidates.size())];
      cur = next;
      if (!in_sub.contains(next)) {
        in_sub.insert(next);
        sub_nodes.push_back(next);
      }
      if (sub_nodes.size() == config_.subgraph_size) {
        Result<Subgraph> sub = InduceSubgraph(g, sub_nodes);
        if (!sub.ok()) {
          out.status = sub.status();
        } else {
          out.produced = true;
          out.sub = std::move(sub).ValueOrDie();
        }
        return;
      }
    }
  };

  const size_t threads = ResolveNumThreads(config_.num_threads);
  ThreadPool* pool = SharedPool(threads);

  Counter* accepted = nullptr;
  Counter* rejected = nullptr;
  Counter* dead_end_restarts = nullptr;
  if (config_.metrics != nullptr) {
    accepted = config_.metrics->GetCounter("sampler.rwr.walks_accepted");
    rejected = config_.metrics->GetCounter("sampler.rwr.walks_rejected");
    dead_end_restarts =
        config_.metrics->GetCounter("sampler.rwr.dead_end_restarts");
  }

  // Process starts in fixed-size rounds to bound the outcome buffer; the
  // round size is a constant, so it cannot influence results either.
  constexpr size_t kRoundSize = 512;
  std::vector<WalkOutcome> outcomes;
  for (size_t round = 0; round < starts.size(); round += kRoundSize) {
    const size_t round_end = std::min(starts.size(), round + kRoundSize);
    outcomes.assign(round_end - round, WalkOutcome{});
    ParallelFor(pool, round, round_end, /*grain=*/16,
                [&](size_t i) { run_walk(i, outcomes[i - round]); });
    for (WalkOutcome& out : outcomes) {
      PRIVIM_RETURN_NOT_OK(out.status);
      if (accepted != nullptr) {
        if (out.produced) {
          accepted->Add(1);
        } else if (out.attempted) {
          rejected->Add(1);
        }
        dead_end_restarts->Add(out.dead_ends);
      }
      if (out.produced) container.Add(std::move(out.sub));
    }
  }
  return container;
}

}  // namespace privim
