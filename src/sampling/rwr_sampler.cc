#include "sampling/rwr_sampler.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "graph/algorithms.h"
#include "graph/subgraph.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_streams.h"
#include "runtime/runtime.h"
#include "runtime/scratch.h"

namespace privim {

namespace {

/// Outcome of one start node's walk: nothing, a subgraph, or an induction
/// error (surfaced in start order). Walk statistics ride along and are
/// folded into the metrics registry only at commit time so the counts do
/// not depend on the thread count.
struct WalkOutcome {
  bool produced = false;
  /// The walk got past the sampling-rate gate and actually stepped.
  bool attempted = false;
  /// Restarts forced by an empty candidate set.
  uint64_t dead_ends = 0;
  Status status = Status::OK();
  Subgraph sub;
};

}  // namespace

RwrSampler::RwrSampler(RwrConfig config) : config_(std::move(config)) {}

RwrSampler::~RwrSampler() = default;

Result<SubgraphContainer> RwrSampler::Extract(
    const Graph& g, Rng& rng, const std::vector<NodeId>* restrict_to) const {
  if (config_.subgraph_size < 2) {
    return Status::InvalidArgument("subgraph size must be at least 2");
  }
  if (config_.sampling_rate <= 0.0 || config_.sampling_rate > 1.0) {
    return Status::InvalidArgument("sampling rate must lie in (0,1]");
  }
  SubgraphContainer container;

  std::unordered_set<NodeId> allowed;
  if (restrict_to != nullptr) {
    // Validate before walking: an unchecked start id would index past the
    // end of the per-node hop-distance map below (out-of-bounds write).
    for (NodeId v : *restrict_to) {
      if (v >= g.num_nodes()) {
        return Status::InvalidArgument(
            "restrict_to contains node id " + std::to_string(v) +
            " but the graph has only " + std::to_string(g.num_nodes()) +
            " nodes");
      }
    }
    allowed.insert(restrict_to->begin(), restrict_to->end());
  }
  auto is_allowed = [&](NodeId v) {
    return restrict_to == nullptr || allowed.contains(v);
  };

  std::vector<NodeId> starts;
  if (restrict_to != nullptr) {
    starts = *restrict_to;
  } else {
    starts.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
  }

  // Walks are mutually independent (Algorithm 1 has no cross-walk state),
  // so each start node i runs against its own child stream `streams.
  // Stream(i)` and the results are committed in start order — the outcome
  // is a pure function of (graph, seed), not of the thread count.
  RngStreams streams(rng);

  const uint64_t graph_fp = g.IdentityFingerprint();

  // One walk, fully self-contained up to the scratch workspace `ws`, whose
  // contents are logically fresh after the Reset/clear calls — reuse is a
  // memory optimization, never a semantic input (docs/performance.md).
  auto run_walk = [&](size_t i, WalkOutcome& out, Workspace& ws) {
    const NodeId v0 = starts[i];
    Rng walk_rng = streams.Stream(i);
    if (!walk_rng.Bernoulli(config_.sampling_rate)) return;
    out.attempted = true;

    // The r-hop ball N_r(v0), the walk's target filter (Algorithm 1
    // Line 10), as a stamped hop-distance map. The ball is a pure function
    // of (graph, v0, hop_bound), so it can be replayed from the workspace's
    // LRU cache when v0 was walked recently (restarts and repeated Extract
    // calls revisit the same start nodes).
    ws.hop_dist.Reset(g.num_nodes());
    ws.ball_cache.Bind(graph_fp, config_.hop_bound);
    if (const HopBall* cached = ws.ball_cache.Lookup(v0);
        cached != nullptr) {
      for (const auto& [node, dist] : cached->nodes) {
        ws.hop_dist.Set(node, dist);
      }
    } else {
      // Fill the cache entry in place: InsertSlot recycles the evicted
      // ball's storage, so a warm cache builds balls without allocating.
      HopBall& ball = ws.ball_cache.InsertSlot(v0);
      ws.frontier.clear();
      ws.frontier.push_back(v0);
      ws.hop_dist.Set(v0, 0);
      ball.nodes.emplace_back(v0, 0);
      for (int h = 0; h < config_.hop_bound && !ws.frontier.empty(); ++h) {
        ws.next_frontier.clear();
        for (NodeId u : ws.frontier) {
          for (NodeId w : g.OutNeighbors(u)) {
            if (!ws.hop_dist.Contains(w)) {
              ws.hop_dist.Set(w, h + 1);
              ball.nodes.emplace_back(w, h + 1);
              ws.next_frontier.push_back(w);
            }
          }
        }
        std::swap(ws.frontier, ws.next_frontier);
      }
    }

    ws.visited.Reset(g.num_nodes());
    ws.nodes.clear();
    ws.visited.Insert(v0);
    ws.nodes.push_back(v0);
    NodeId cur = v0;

    for (size_t l = 0; l < config_.walk_length; ++l) {
      if (walk_rng.Bernoulli(config_.restart_prob)) cur = v0;
      // Next node from N(cur) ∩ N_r(v0), uniformly.
      ws.candidates.clear();
      for (NodeId w : g.OutNeighbors(cur)) {
        if (ws.hop_dist.Contains(w) && is_allowed(w)) {
          ws.candidates.push_back(w);
        }
      }
      if (ws.candidates.empty()) {
        ++out.dead_ends;
        cur = v0;  // Dead end: restart.
        continue;
      }
      const NodeId next =
          ws.candidates[walk_rng.UniformInt(ws.candidates.size())];
      cur = next;
      if (!ws.visited.Contains(next)) {
        ws.visited.Insert(next);
        ws.nodes.push_back(next);
      }
      if (ws.nodes.size() == config_.subgraph_size) {
        Result<Subgraph> sub = InduceSubgraph(
            g, std::vector<NodeId>(ws.nodes.begin(), ws.nodes.end()));
        if (!sub.ok()) {
          out.status = sub.status();
        } else {
          out.produced = true;
          out.sub = std::move(sub).ValueOrDie();
        }
        return;
      }
    }
  };

  const size_t threads = ResolveNumThreads(config_.num_threads);
  ThreadPool* pool = SharedPool(threads);
  const size_t num_slots = pool == nullptr ? 1 : threads;
  workspaces_.EnsureSlots(num_slots);

  Counter* accepted = nullptr;
  Counter* rejected = nullptr;
  Counter* dead_end_restarts = nullptr;
  if (config_.metrics != nullptr) {
    accepted = config_.metrics->GetCounter("sampler.rwr.walks_accepted");
    rejected = config_.metrics->GetCounter("sampler.rwr.walks_rejected");
    dead_end_restarts =
        config_.metrics->GetCounter("sampler.rwr.dead_end_restarts");
  }

  // Process starts in fixed-size rounds to bound the outcome buffer; the
  // round size is a constant, so it cannot influence results either.
  constexpr size_t kRoundSize = 512;
  std::vector<WalkOutcome> outcomes;
  for (size_t round = 0; round < starts.size(); round += kRoundSize) {
    const size_t round_end = std::min(starts.size(), round + kRoundSize);
    outcomes.assign(round_end - round, WalkOutcome{});
    ParallelForWithSlots(pool, round, round_end, /*grain=*/16, num_slots,
                         [&](size_t i, size_t slot) {
                           run_walk(i, outcomes[i - round],
                                    workspaces_.Acquire(slot));
                         });
    for (WalkOutcome& out : outcomes) {
      PRIVIM_RETURN_NOT_OK(out.status);
      if (accepted != nullptr) {
        if (out.produced) {
          accepted->Add(1);
        } else if (out.attempted) {
          rejected->Add(1);
        }
        dead_end_restarts->Add(out.dead_ends);
      }
      if (out.produced) container.Add(std::move(out.sub));
    }
  }

  if (config_.metrics != nullptr) {
    // "runtime." prefix: reuse and cache-hit rates depend on which slot
    // served which walk, i.e. on scheduling — they are diagnostics outside
    // the determinism contract, like the pool statistics.
    const WorkspacePool::Stats stats = workspaces_.TakeStats();
    config_.metrics->GetCounter("runtime.scratch.rwr.workspace_reuses")
        ->Add(stats.map_fast_resets);
    config_.metrics->GetCounter("runtime.scratch.rwr.workspace_inits")
        ->Add(stats.map_full_resets);
    config_.metrics->GetCounter("runtime.scratch.rwr.touched_nodes")
        ->Add(stats.map_writes);
    config_.metrics->GetCounter("runtime.scratch.rwr.ball_cache_hits")
        ->Add(stats.ball_cache_hits);
    config_.metrics->GetCounter("runtime.scratch.rwr.ball_cache_misses")
        ->Add(stats.ball_cache_misses);
  }
  return container;
}

}  // namespace privim
