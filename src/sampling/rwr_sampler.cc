#include "sampling/rwr_sampler.h"

#include <unordered_set>

#include "graph/algorithms.h"
#include "graph/subgraph.h"

namespace privim {

RwrSampler::RwrSampler(RwrConfig config) : config_(std::move(config)) {}

Result<SubgraphContainer> RwrSampler::Extract(
    const Graph& g, Rng& rng, const std::vector<NodeId>* restrict_to) const {
  if (config_.subgraph_size < 2) {
    return Status::InvalidArgument("subgraph size must be at least 2");
  }
  if (config_.sampling_rate <= 0.0 || config_.sampling_rate > 1.0) {
    return Status::InvalidArgument("sampling rate must lie in (0,1]");
  }
  SubgraphContainer container;

  std::unordered_set<NodeId> allowed;
  if (restrict_to != nullptr) {
    allowed.insert(restrict_to->begin(), restrict_to->end());
  }
  auto is_allowed = [&](NodeId v) {
    return restrict_to == nullptr || allowed.contains(v);
  };

  std::vector<NodeId> starts;
  if (restrict_to != nullptr) {
    starts = *restrict_to;
  } else {
    starts.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
  }

  // Scratch reused across walks.
  std::vector<int> hop_dist;  // Distance from v0, capped at hop_bound.
  std::vector<NodeId> candidates;

  for (NodeId v0 : starts) {
    if (!rng.Bernoulli(config_.sampling_rate)) continue;

    // Precompute the r-hop ball N_r(v0) once per walk (the walk's target
    // filter, Algorithm 1 Line 10).
    hop_dist.assign(g.num_nodes(), -1);
    {
      std::vector<NodeId> frontier{v0};
      hop_dist[v0] = 0;
      for (int h = 0; h < config_.hop_bound && !frontier.empty(); ++h) {
        std::vector<NodeId> next;
        for (NodeId u : frontier) {
          for (NodeId w : g.OutNeighbors(u)) {
            if (hop_dist[w] < 0) {
              hop_dist[w] = h + 1;
              next.push_back(w);
            }
          }
        }
        frontier = std::move(next);
      }
    }

    std::unordered_set<NodeId> in_sub;
    std::vector<NodeId> sub_nodes;
    in_sub.insert(v0);
    sub_nodes.push_back(v0);
    NodeId cur = v0;

    for (size_t l = 0; l < config_.walk_length; ++l) {
      if (rng.Bernoulli(config_.restart_prob)) cur = v0;
      // Next node from N(cur) ∩ N_r(v0), uniformly.
      candidates.clear();
      for (NodeId w : g.OutNeighbors(cur)) {
        if (hop_dist[w] >= 0 && is_allowed(w)) candidates.push_back(w);
      }
      if (candidates.empty()) {
        cur = v0;  // Dead end: restart.
        continue;
      }
      const NodeId next = candidates[rng.UniformInt(candidates.size())];
      cur = next;
      if (!in_sub.contains(next)) {
        in_sub.insert(next);
        sub_nodes.push_back(next);
      }
      if (sub_nodes.size() == config_.subgraph_size) {
        PRIVIM_ASSIGN_OR_RETURN(Subgraph sub, InduceSubgraph(g, sub_nodes));
        container.Add(std::move(sub));
        break;
      }
    }
  }
  return container;
}

}  // namespace privim
