#ifndef PRIVIM_SAMPLING_FREQ_SAMPLER_H_
#define PRIVIM_SAMPLING_FREQ_SAMPLER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "runtime/scratch.h"
#include "sampling/container.h"

namespace privim {

/// Parameters of the dual-stage adaptive frequency sampling scheme
/// (Algorithm 3 / Section IV).
struct FreqSamplingConfig {
  /// Subgraph size n for stage 1 (stage 2 uses n / shrink_factor).
  size_t subgraph_size = 40;
  /// Return probability tau of the RWR.
  double restart_prob = 0.3;
  /// Frequency decay factor mu in Eq. 9 (sampling prob ~ 1/(f_v+1)^mu).
  double decay = 1.0;
  /// Starting-node sampling rate q.
  double sampling_rate = 0.1;
  /// Positive integer s: boundary-stage subgraph size is n/s.
  size_t shrink_factor = 2;
  /// Random walk length budget L.
  size_t walk_length = 200;
  /// Global frequency threshold M: no node may occur in more than M
  /// subgraphs across BOTH stages (this is N_g* of the privacy analysis).
  size_t frequency_threshold = 6;
  /// Run stage 2 (BES)? PrivIM+SCS sets this false; PrivIM* leaves it true.
  bool boundary_stage = true;
  /// Worker parallelism for the walks (0 = global runtime default). Walks
  /// are speculated in fixed-size rounds against a frequency snapshot and
  /// committed in start order; a walk that observed a frequency entry
  /// another commit changed is deterministically re-run against the live
  /// vector. Output is therefore bit-identical to the serial execution for
  /// every thread count, and the global bound M holds exactly.
  size_t num_threads = 0;
  /// Optional metrics sink ("sampler.freq.*"): walk accept/reject/dead-end
  /// counters and the final frequency-vector histogram against the cap M.
  /// Walk outcomes are recorded at (serial) commit time, so every counter
  /// except sampler.freq.stale_replays — which counts thread-scheduling
  /// artifacts by definition — is bit-identical across thread counts.
  /// Also receives the scheduling-dependent scratch diagnostics
  /// ("runtime.scratch.freq.workspace_reuses" / "workspace_inits",
  /// docs/performance.md), likewise outside the determinism contract.
  MetricsRegistry* metrics = nullptr;
};

/// Result of the dual-stage extraction, with stage attribution and the
/// final frequency vector for auditing.
struct DualStageResult {
  SubgraphContainer container;
  size_t stage1_count = 0;
  size_t stage2_count = 0;
  /// Final per-node occurrence counts f (indexed by original node id).
  std::vector<size_t> frequency;
};

/// Algorithm 3: Sensitivity-Constrained Sampling (stage 1) followed by
/// Boundary-Enhanced Sampling (stage 2).
///
/// Invariants enforced (and audited in tests):
///  * every subgraph has exactly n (stage 1) or max(2, n/s) (stage 2) nodes;
///  * no node occurs in more than `frequency_threshold` subgraphs in total,
///    so the privacy accountant may use N_g* = M (Section IV-D).
///
/// Unlike Algorithm 1 there is no theta-projection and no hop bound: the
/// frequency cap M is what limits inter-node dependency.
/// A sampler instance owns per-worker scratch workspaces (stamped
/// membership sets, pooled proposal/weight buffers) reused across walks,
/// rounds, and Extract calls. Scratch never changes results, but one
/// instance must not run two Extract calls concurrently (the runtime's
/// single-orchestrator contract, docs/runtime.md).
class FreqSampler {
 public:
  explicit FreqSampler(FreqSamplingConfig config);
  ~FreqSampler();

  /// Runs both stages on `g`. `restrict_to` optionally limits sampling to a
  /// node subset (the training split).
  Result<DualStageResult> Extract(const Graph& g, Rng& rng,
                                  const std::vector<NodeId>* restrict_to =
                                      nullptr) const;

  const FreqSamplingConfig& config() const { return config_; }

 private:
  /// One FreqSampling pass (Algorithm 3, Lines 9-28) over start nodes
  /// `starts`, collecting subgraphs of `n` nodes into `container` while
  /// updating `freq`. `eligible[v]` gates which nodes may be visited
  /// (stage 2 removes saturated nodes). Consumes exactly one draw of `rng`
  /// (the substream base key); each start node walks its own child stream.
  Status FreqSamplingPass(const Graph& g, const std::vector<NodeId>& starts,
                          size_t n, std::vector<size_t>& freq,
                          const std::vector<uint8_t>& eligible, Rng& rng,
                          SubgraphContainer& container) const;

  FreqSamplingConfig config_;
  /// Slot-indexed scratch handed to the walk workers (mutable: scratch is
  /// not observable state; see class comment for the concurrency rule).
  mutable WorkspacePool workspaces_;
};

}  // namespace privim

#endif  // PRIVIM_SAMPLING_FREQ_SAMPLER_H_
