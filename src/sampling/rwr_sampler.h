#ifndef PRIVIM_SAMPLING_RWR_SAMPLER_H_
#define PRIVIM_SAMPLING_RWR_SAMPLER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "runtime/scratch.h"
#include "sampling/container.h"

namespace privim {

/// Parameters of the naive subgraph-extraction process (Algorithm 1).
struct RwrConfig {
  /// Fixed subgraph size n.
  size_t subgraph_size = 40;
  /// Return probability tau of the random walk with restart.
  double restart_prob = 0.3;
  /// Starting-node sampling rate q.
  double sampling_rate = 0.1;
  /// Random walk length budget L.
  size_t walk_length = 200;
  /// Hop bound r: sampled nodes stay within the r-hop ball of the start.
  int hop_bound = 3;
  /// Worker parallelism for the per-start-node walks (0 = global runtime
  /// default). Every start node owns a counter-derived RNG substream and
  /// subgraphs are committed in start order, so the container is
  /// bit-identical for every thread count.
  size_t num_threads = 0;
  /// Optional metrics sink ("sampler.rwr.*"): walk accept/reject and
  /// dead-end-restart counters, recorded from the walk outcomes at (serial)
  /// commit time, so the counts are bit-identical across thread counts.
  /// Also receives the scheduling-dependent scratch diagnostics
  /// ("runtime.scratch.rwr.workspace_reuses" / "workspace_inits" /
  /// "touched_nodes" / "ball_cache_hits" / "ball_cache_misses",
  /// docs/performance.md), which are outside the determinism contract.
  MetricsRegistry* metrics = nullptr;
};

/// Algorithm 1: RWR subgraph extraction on a theta-bounded graph.
///
/// The caller is expected to pass a graph already projected with
/// ThetaBoundedProjection (the naive PrivIM pipeline does this); the sampler
/// itself is projection-agnostic. Each selected start node v0 yields at most
/// one subgraph of exactly `subgraph_size` unique nodes, all within the
/// r-hop out-ball of v0; walks that fail to collect n nodes within L steps
/// produce nothing (matching the paper's pseudo-code).
/// A sampler instance owns per-worker scratch workspaces (stamped
/// hop-distance maps, pooled walk buffers, the r-hop-ball LRU cache), so
/// repeated Extract calls reuse memory instead of re-allocating per walk.
/// Scratch never changes results — outputs stay a pure function of
/// (graph, seed) — but it does mean one instance must not run two Extract
/// calls concurrently (matching the runtime's single-orchestrator
/// contract, docs/runtime.md).
class RwrSampler {
 public:
  explicit RwrSampler(RwrConfig config);
  ~RwrSampler();

  /// Runs the extraction over every potential start node of `g` using `rng`.
  /// `restrict_to` optionally limits start nodes and walk targets to a node
  /// subset (the training split); pass nullptr for all nodes.
  Result<SubgraphContainer> Extract(const Graph& g, Rng& rng,
                                    const std::vector<NodeId>* restrict_to =
                                        nullptr) const;

  const RwrConfig& config() const { return config_; }

 private:
  RwrConfig config_;
  /// Slot-indexed scratch handed to the walk workers (mutable: scratch is
  /// not observable state; see class comment for the concurrency rule).
  mutable WorkspacePool workspaces_;
};

}  // namespace privim

#endif  // PRIVIM_SAMPLING_RWR_SAMPLER_H_
