#include "sampling/freq_sampler.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "graph/subgraph.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_streams.h"
#include "runtime/runtime.h"
#include "runtime/scratch.h"

namespace privim {

namespace {

/// One walk's proposal: the node set it would commit (empty unless the walk
/// collected exactly n nodes) plus every frequency entry it read, for the
/// commit-time conflict test of the speculative parallel path. Walk
/// statistics ride along and are folded into the metrics registry only at
/// commit time — a stale proposal is discarded wholesale and replaced by
/// its re-run, so recorded counts always describe the walk that actually
/// committed (i.e. the serial semantics).
struct WalkProposal {
  bool success = false;
  /// The walk got past the sampling-rate / eligibility / saturation gates
  /// and actually stepped.
  bool attempted = false;
  /// Restarts forced by an empty eligible-neighbor set.
  uint64_t dead_ends = 0;
  std::vector<NodeId> nodes;
  std::vector<NodeId> reads;
};

/// Commit-time walk counters (all nullptr when metrics are disabled).
struct WalkCounters {
  Counter* accepted = nullptr;
  Counter* rejected = nullptr;
  Counter* dead_ends = nullptr;
  Counter* stale_replays = nullptr;

  explicit WalkCounters(MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    accepted = metrics->GetCounter("sampler.freq.walks_accepted");
    rejected = metrics->GetCounter("sampler.freq.walks_rejected");
    dead_ends = metrics->GetCounter("sampler.freq.dead_end_restarts");
    stale_replays = metrics->GetCounter("sampler.freq.stale_replays");
  }

  void RecordCommit(const WalkProposal& p) const {
    if (accepted == nullptr) return;
    if (p.success) {
      accepted->Add(1);
    } else if (p.attempted) {
      rejected->Add(1);
    }
    dead_ends->Add(p.dead_ends);
  }
};

}  // namespace

FreqSampler::FreqSampler(FreqSamplingConfig config)
    : config_(std::move(config)) {}

FreqSampler::~FreqSampler() = default;

Status FreqSampler::FreqSamplingPass(const Graph& g,
                                     const std::vector<NodeId>& starts,
                                     size_t n, std::vector<size_t>& freq,
                                     const std::vector<uint8_t>& eligible,
                                     Rng& rng,
                                     SubgraphContainer& container) const {
  const size_t m_cap = config_.frequency_threshold;

  // Unlike Algorithm 1, walks are coupled through the frequency vector: a
  // committed subgraph changes the weights every later walk sees. The
  // canonical (serial) semantics is: start i walks its own child stream
  // `streams.Stream(i)` against the LIVE frequency vector, in start order.
  // The parallel path below reproduces those semantics exactly.
  RngStreams streams(rng);

  // One walk of start index `i` against frequency view `f`, writing into
  // `out`. When `record_reads` is set, every frequency entry the walk
  // observes is recorded so the committer can detect stale speculation.
  // `ws` is reusable scratch (stamped membership set, pooled proposal
  // buffers): logically fresh after the Reset/clear calls, so it can never
  // leak state between walks.
  auto run_walk = [&](size_t i, const std::vector<size_t>& f,
                      bool record_reads, WalkProposal& out, Workspace& ws) {
    const NodeId v0 = starts[i];
    Rng walk_rng = streams.Stream(i);
    if (!walk_rng.Bernoulli(config_.sampling_rate)) return;
    if (!eligible[v0]) return;
    if (record_reads) out.reads.push_back(v0);
    if (f[v0] >= m_cap) return;
    out.attempted = true;

    ws.visited.Reset(g.num_nodes());  // Subgraph membership (in_sub).
    ws.nodes.clear();
    ws.visited.Insert(v0);
    ws.nodes.push_back(v0);
    NodeId cur = v0;

    for (size_t l = 0; l < config_.walk_length; ++l) {
      if (walk_rng.Bernoulli(config_.restart_prob)) cur = v0;

      // Eq. 9: neighbor v is drawn with weight 1/(f_v+1)^mu, excluding
      // nodes whose frequency already reached M or that are ineligible.
      // Nodes already inside the subgraph stay eligible as walk hops but
      // add no new member; excluding them from the weights would distort
      // the walk less faithfully to the pseudo-code, so we keep them.
      ws.candidates.clear();
      ws.weights.clear();
      for (NodeId w : g.OutNeighbors(cur)) {
        if (!eligible[w]) continue;
        if (record_reads) out.reads.push_back(w);
        // A node that already reached the cap may not be *added*; it may
        // also not be walked through (its influence is saturated).
        if (f[w] >= m_cap && !ws.visited.Contains(w)) continue;
        ws.candidates.push_back(w);
        ws.weights.push_back(
            1.0 / std::pow(static_cast<double>(f[w]) + 1.0, config_.decay));
      }
      if (ws.candidates.empty()) {
        ++out.dead_ends;
        cur = v0;  // Dead end: restart and try again.
        continue;
      }
      const size_t pick = walk_rng.Discrete(ws.weights);
      if (pick >= ws.candidates.size()) {
        cur = v0;
        continue;
      }
      const NodeId next = ws.candidates[pick];
      cur = next;
      if (!ws.visited.Contains(next) && f[next] < m_cap) {
        ws.visited.Insert(next);
        ws.nodes.push_back(next);
      }
      if (ws.nodes.size() == n) break;
    }

    if (ws.nodes.size() == n) {
      out.success = true;
      out.nodes.assign(ws.nodes.begin(), ws.nodes.end());
    }
  };

  const size_t threads = ResolveNumThreads(config_.num_threads);
  ThreadPool* pool = SharedPool(threads);
  const size_t num_slots = pool == nullptr ? 1 : threads;
  workspaces_.EnsureSlots(num_slots);
  const WalkCounters counters(config_.metrics);

  if (pool == nullptr) {
    Workspace& ws = workspaces_.Acquire(0);
    for (size_t i = 0; i < starts.size(); ++i) {
      WalkProposal p;
      run_walk(i, freq, /*record_reads=*/false, p, ws);
      counters.RecordCommit(p);
      if (p.success) {
        PRIVIM_ASSIGN_OR_RETURN(Subgraph sub, InduceSubgraph(g, p.nodes));
        container.Add(std::move(sub));
        // Algorithm 3, Line 26: update f with the accepted node set.
        for (NodeId u : p.nodes) ++freq[u];
      }
    }
    return Status::OK();
  }

  // Parallel path: speculate fixed-size rounds of walks against a snapshot
  // of the frequency vector, then commit in start order. Within a round the
  // live vector differs from the snapshot exactly on the entries earlier
  // commits touched (`dirty`), so a proposal whose read set avoids `dirty`
  // is bit-identical to a live-vector walk and may commit as is; otherwise
  // the walk is re-run on its own (fresh) child stream against the live
  // vector — i.e. exactly what the serial path would have computed. The
  // round size is a constant so chunking cannot influence results, and the
  // global bound M holds exactly because every commit is serial.
  constexpr size_t kRoundSize = 256;
  std::vector<size_t> snapshot;
  std::vector<WalkProposal> proposals;
  std::unordered_set<NodeId> dirty;
  for (size_t round = 0; round < starts.size(); round += kRoundSize) {
    const size_t round_end = std::min(starts.size(), round + kRoundSize);
    snapshot = freq;
    proposals.assign(round_end - round, WalkProposal{});
    ParallelForWithSlots(pool, round, round_end, /*grain=*/8, num_slots,
                         [&](size_t i, size_t slot) {
                           run_walk(i, snapshot, /*record_reads=*/true,
                                    proposals[i - round],
                                    workspaces_.Acquire(slot));
                         });

    dirty.clear();
    for (size_t i = round; i < round_end; ++i) {
      WalkProposal& p = proposals[i - round];
      bool stale = false;
      if (!dirty.empty()) {
        for (NodeId r : p.reads) {
          if (dirty.contains(r)) {
            stale = true;
            break;
          }
        }
      }
      if (stale) {
        if (counters.stale_replays != nullptr) counters.stale_replays->Add(1);
        p = WalkProposal{};
        // Commits are serial (the parallel round has joined), so slot 0's
        // workspace is free for the replay.
        run_walk(i, freq, /*record_reads=*/false, p, workspaces_.Acquire(0));
      }
      counters.RecordCommit(p);
      if (p.success) {
        PRIVIM_ASSIGN_OR_RETURN(Subgraph sub, InduceSubgraph(g, p.nodes));
        container.Add(std::move(sub));
        for (NodeId u : p.nodes) {
          ++freq[u];
          dirty.insert(u);
        }
      }
    }
  }
  return Status::OK();
}

Result<DualStageResult> FreqSampler::Extract(
    const Graph& g, Rng& rng, const std::vector<NodeId>* restrict_to) const {
  if (config_.subgraph_size < 2) {
    return Status::InvalidArgument("subgraph size must be at least 2");
  }
  if (config_.frequency_threshold == 0) {
    return Status::InvalidArgument("frequency threshold M must be positive");
  }
  if (config_.shrink_factor == 0) {
    return Status::InvalidArgument("shrink factor s must be positive");
  }
  if (config_.sampling_rate <= 0.0 || config_.sampling_rate > 1.0) {
    return Status::InvalidArgument("sampling rate must lie in (0,1]");
  }

  DualStageResult result;
  result.frequency.assign(g.num_nodes(), 0);

  std::vector<uint8_t> eligible(g.num_nodes(), restrict_to == nullptr);
  std::vector<NodeId> starts;
  if (restrict_to != nullptr) {
    // Validate before touching `eligible`: an unchecked id would index past
    // the end of every per-node vector below (out-of-bounds write).
    for (NodeId v : *restrict_to) {
      if (v >= g.num_nodes()) {
        return Status::InvalidArgument(
            "restrict_to contains node id " + std::to_string(v) +
            " but the graph has only " + std::to_string(g.num_nodes()) +
            " nodes");
      }
    }
    starts = *restrict_to;
    for (NodeId v : starts) eligible[v] = 1;
  } else {
    starts.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
  }

  // Stage 1: Sensitivity-Constrained Sampling on the full graph.
  PRIVIM_RETURN_NOT_OK(FreqSamplingPass(g, starts, config_.subgraph_size,
                                        result.frequency, eligible, rng,
                                        result.container));
  result.stage1_count = result.container.size();

  if (config_.boundary_stage) {
    // Stage 2: Boundary-Enhanced Sampling. Remove saturated nodes
    // (f_v = M), keep the frequency vector f* so the global cap M still
    // binds across both stages, and sample smaller subgraphs n/s from the
    // remaining boundary regions.
    std::vector<uint8_t> boundary_eligible = eligible;
    std::vector<NodeId> boundary_starts;
    for (NodeId v : starts) {
      if (result.frequency[v] >= config_.frequency_threshold) {
        boundary_eligible[v] = 0;
      } else {
        boundary_starts.push_back(v);
      }
    }
    const size_t n2 = std::max<size_t>(
        2, config_.subgraph_size / config_.shrink_factor);
    SubgraphContainer stage2;
    PRIVIM_RETURN_NOT_OK(FreqSamplingPass(g, boundary_starts, n2,
                                          result.frequency,
                                          boundary_eligible, rng, stage2));
    result.stage2_count = stage2.size();
    result.container.Merge(std::move(stage2));
  }

  if (config_.metrics != nullptr) {
    // Final occurrence counts against the cap M: bucket i holds nodes with
    // f = i, the overflow bucket would indicate a violated cap.
    Histogram* freq_hist = config_.metrics->GetHistogram(
        "sampler.freq.frequency",
        LinearBuckets(1.0, config_.frequency_threshold + 1));
    for (NodeId v : starts) {
      freq_hist->Observe(static_cast<double>(result.frequency[v]));
    }
    // "runtime." prefix: reuse rates depend on which slot served which
    // walk, i.e. on scheduling — diagnostics outside the determinism
    // contract, like the pool statistics.
    const WorkspacePool::Stats stats = workspaces_.TakeStats();
    config_.metrics->GetCounter("runtime.scratch.freq.workspace_reuses")
        ->Add(stats.map_fast_resets);
    config_.metrics->GetCounter("runtime.scratch.freq.workspace_inits")
        ->Add(stats.map_full_resets);
    config_.metrics->GetCounter("runtime.scratch.freq.touched_nodes")
        ->Add(stats.map_writes);
  }
  return result;
}

}  // namespace privim
