#include "sampling/freq_sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/subgraph.h"

namespace privim {

FreqSampler::FreqSampler(FreqSamplingConfig config)
    : config_(std::move(config)) {}

Status FreqSampler::FreqSamplingPass(const Graph& g,
                                     const std::vector<NodeId>& starts,
                                     size_t n, std::vector<size_t>& freq,
                                     const std::vector<uint8_t>& eligible,
                                     Rng& rng,
                                     SubgraphContainer& container) const {
  const size_t m_cap = config_.frequency_threshold;
  std::vector<double> weights;
  std::vector<NodeId> neighbors;

  for (NodeId v0 : starts) {
    if (!rng.Bernoulli(config_.sampling_rate)) continue;
    if (!eligible[v0] || freq[v0] >= m_cap) continue;

    std::unordered_set<NodeId> in_sub;
    std::vector<NodeId> sub_nodes;
    in_sub.insert(v0);
    sub_nodes.push_back(v0);
    NodeId cur = v0;

    for (size_t l = 0; l < config_.walk_length; ++l) {
      if (rng.Bernoulli(config_.restart_prob)) cur = v0;

      // Eq. 9: neighbor v is drawn with weight 1/(f_v+1)^mu, excluding
      // nodes whose frequency already reached M or that are ineligible.
      // Nodes already inside the subgraph stay eligible as walk hops but
      // add no new member; excluding them from the weights would distort
      // the walk less faithfully to the pseudo-code, so we keep them.
      neighbors.clear();
      weights.clear();
      for (NodeId w : g.OutNeighbors(cur)) {
        if (!eligible[w]) continue;
        // A node that already reached the cap may not be *added*; it may
        // also not be walked through (its influence is saturated).
        if (freq[w] >= m_cap && !in_sub.contains(w)) continue;
        neighbors.push_back(w);
        weights.push_back(
            1.0 / std::pow(static_cast<double>(freq[w]) + 1.0,
                           config_.decay));
      }
      if (neighbors.empty()) {
        cur = v0;  // Dead end: restart and try again.
        continue;
      }
      const size_t pick = rng.Discrete(weights);
      if (pick >= neighbors.size()) {
        cur = v0;
        continue;
      }
      const NodeId next = neighbors[pick];
      cur = next;
      if (!in_sub.contains(next) && freq[next] < m_cap) {
        in_sub.insert(next);
        sub_nodes.push_back(next);
      }
      if (sub_nodes.size() == n) break;
    }

    if (sub_nodes.size() == n) {
      PRIVIM_ASSIGN_OR_RETURN(Subgraph sub, InduceSubgraph(g, sub_nodes));
      container.Add(std::move(sub));
      // Algorithm 3, Line 26: update f with the accepted node set.
      for (NodeId u : sub_nodes) ++freq[u];
    }
  }
  return Status::OK();
}

Result<DualStageResult> FreqSampler::Extract(
    const Graph& g, Rng& rng, const std::vector<NodeId>* restrict_to) const {
  if (config_.subgraph_size < 2) {
    return Status::InvalidArgument("subgraph size must be at least 2");
  }
  if (config_.frequency_threshold == 0) {
    return Status::InvalidArgument("frequency threshold M must be positive");
  }
  if (config_.shrink_factor == 0) {
    return Status::InvalidArgument("shrink factor s must be positive");
  }
  if (config_.sampling_rate <= 0.0 || config_.sampling_rate > 1.0) {
    return Status::InvalidArgument("sampling rate must lie in (0,1]");
  }

  DualStageResult result;
  result.frequency.assign(g.num_nodes(), 0);

  std::vector<uint8_t> eligible(g.num_nodes(), restrict_to == nullptr);
  std::vector<NodeId> starts;
  if (restrict_to != nullptr) {
    starts = *restrict_to;
    for (NodeId v : starts) eligible[v] = 1;
  } else {
    starts.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
  }

  // Stage 1: Sensitivity-Constrained Sampling on the full graph.
  PRIVIM_RETURN_NOT_OK(FreqSamplingPass(g, starts, config_.subgraph_size,
                                        result.frequency, eligible, rng,
                                        result.container));
  result.stage1_count = result.container.size();

  if (config_.boundary_stage) {
    // Stage 2: Boundary-Enhanced Sampling. Remove saturated nodes
    // (f_v = M), keep the frequency vector f* so the global cap M still
    // binds across both stages, and sample smaller subgraphs n/s from the
    // remaining boundary regions.
    std::vector<uint8_t> boundary_eligible = eligible;
    std::vector<NodeId> boundary_starts;
    for (NodeId v : starts) {
      if (result.frequency[v] >= config_.frequency_threshold) {
        boundary_eligible[v] = 0;
      } else {
        boundary_starts.push_back(v);
      }
    }
    const size_t n2 = std::max<size_t>(
        2, config_.subgraph_size / config_.shrink_factor);
    SubgraphContainer stage2;
    PRIVIM_RETURN_NOT_OK(FreqSamplingPass(g, boundary_starts, n2,
                                          result.frequency,
                                          boundary_eligible, rng, stage2));
    result.stage2_count = stage2.size();
    result.container.Merge(std::move(stage2));
  }
  return result;
}

}  // namespace privim
