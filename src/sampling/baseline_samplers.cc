#include "sampling/baseline_samplers.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "dp/sensitivity.h"
#include "graph/subgraph.h"

namespace privim {

Result<SubgraphContainer> EgnRandomSample(const Graph& g, size_t count,
                                          size_t subgraph_size, Rng& rng) {
  if (subgraph_size < 2 || subgraph_size > g.num_nodes()) {
    return Status::InvalidArgument(
        "subgraph size must be in [2, num_nodes]");
  }
  SubgraphContainer container;
  for (size_t i = 0; i < count; ++i) {
    std::vector<uint32_t> pick = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(g.num_nodes()),
        static_cast<uint32_t>(subgraph_size));
    std::vector<NodeId> nodes(pick.begin(), pick.end());
    PRIVIM_ASSIGN_OR_RETURN(Subgraph sub, InduceSubgraph(g, nodes));
    container.Add(std::move(sub));
  }
  return container;
}

Result<SubgraphContainer> EgoSample(const Graph& g,
                                    const EgoSamplingConfig& config,
                                    Rng& rng) {
  if (config.sampling_rate <= 0.0 || config.sampling_rate > 1.0) {
    return Status::InvalidArgument("sampling rate must lie in (0,1]");
  }
  if (config.fanout == 0 || config.max_nodes < 2) {
    return Status::InvalidArgument("fanout and max_nodes must be positive");
  }
  SubgraphContainer container;
  std::vector<NodeId> scratch;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (!rng.Bernoulli(config.sampling_rate)) continue;
    std::unordered_set<NodeId> in_tree{root};
    std::vector<NodeId> nodes{root};
    std::deque<std::pair<NodeId, int>> frontier{{root, 0}};
    while (!frontier.empty() && nodes.size() < config.max_nodes) {
      auto [u, depth] = frontier.front();
      frontier.pop_front();
      if (depth >= config.hops) continue;
      // Keep at most `fanout` randomly chosen out-neighbors.
      auto nbrs = g.OutNeighbors(u);
      scratch.assign(nbrs.begin(), nbrs.end());
      rng.Shuffle(scratch);
      size_t kept = 0;
      for (NodeId v : scratch) {
        if (kept == config.fanout || nodes.size() == config.max_nodes) {
          break;
        }
        if (in_tree.contains(v)) continue;
        in_tree.insert(v);
        nodes.push_back(v);
        frontier.emplace_back(v, depth + 1);
        ++kept;
      }
    }
    if (nodes.size() < 2) continue;  // Isolated root: nothing to learn.
    PRIVIM_ASSIGN_OR_RETURN(Subgraph sub, InduceSubgraph(g, nodes));
    container.Add(std::move(sub));
  }
  return container;
}

size_t EgoOccurrenceBound(const EgoSamplingConfig& config,
                          size_t container_size) {
  const size_t geometric = OccurrenceBoundNaive(
      config.fanout, static_cast<size_t>(std::max(config.hops, 0)));
  return std::min(geometric, container_size);
}

}  // namespace privim
