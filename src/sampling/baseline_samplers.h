#ifndef PRIVIM_SAMPLING_BASELINE_SAMPLERS_H_
#define PRIVIM_SAMPLING_BASELINE_SAMPLERS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "sampling/container.h"

namespace privim {

/// Samplers used by the paper's baseline competitors.

/// EGN (Karalias & Loukas): `count` uniformly random node subsets of size
/// `subgraph_size` each. No per-node frequency control, so the a-priori
/// occurrence bound is the container size itself — which is exactly why EGN
/// needs "excessive DP noise" (Section V-B).
Result<SubgraphContainer> EgnRandomSample(const Graph& g, size_t count,
                                          size_t subgraph_size, Rng& rng);

/// HP's HeterPoisson-style ego sampling (Xiang et al., S&P 2024): for each
/// node selected with rate `sampling_rate`, build a rooted BFS tree up to
/// `hops` hops keeping at most `fanout` neighbors per expanded node and at
/// most `max_nodes` total. Node-centric, so each subgraph describes a
/// single ego's neighborhood and global structure is discarded.
struct EgoSamplingConfig {
  double sampling_rate = 0.1;
  size_t fanout = 10;  // theta.
  int hops = 2;        // r.
  size_t max_nodes = 40;
};
Result<SubgraphContainer> EgoSample(const Graph& g,
                                    const EgoSamplingConfig& config,
                                    Rng& rng);

/// A-priori occurrence bound for EgoSample: a node joins another node's ego
/// tree only if it lies within `hops` hops, and each expansion keeps at
/// most `fanout` parents, giving the same geometric bound as Lemma 1,
/// clamped by the number of subgraphs.
size_t EgoOccurrenceBound(const EgoSamplingConfig& config,
                          size_t container_size);

}  // namespace privim

#endif  // PRIVIM_SAMPLING_BASELINE_SAMPLERS_H_
