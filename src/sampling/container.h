#ifndef PRIVIM_SAMPLING_CONTAINER_H_
#define PRIVIM_SAMPLING_CONTAINER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/subgraph.h"

namespace privim {

/// The subgraph container G_sub: the pool mini-batches are drawn from
/// during DP training (Figure 2, Module 1 output).
class SubgraphContainer {
 public:
  SubgraphContainer() = default;

  void Add(Subgraph subgraph) { subgraphs_.push_back(std::move(subgraph)); }

  /// Moves all subgraphs of `other` into this container (Algorithm 3,
  /// Line 7: G_sub = G_sub,stage1 + G_sub,stage2).
  void Merge(SubgraphContainer&& other);

  size_t size() const { return subgraphs_.size(); }
  bool empty() const { return subgraphs_.empty(); }
  const Subgraph& at(size_t i) const { return subgraphs_.at(i); }
  const std::vector<Subgraph>& subgraphs() const { return subgraphs_; }

  /// Counts how often each original node occurs across all subgraphs.
  /// `num_original_nodes` sizes the histogram. Used to *audit* the privacy
  /// accountant's occurrence bound in tests and at runtime.
  std::vector<size_t> OccurrenceHistogram(size_t num_original_nodes) const;

  /// Maximum entry of OccurrenceHistogram (0 if empty).
  size_t MaxOccurrence(size_t num_original_nodes) const;

 private:
  std::vector<Subgraph> subgraphs_;
};

}  // namespace privim

#endif  // PRIVIM_SAMPLING_CONTAINER_H_
