#ifndef PRIVIM_SAMPLING_CONTAINER_H_
#define PRIVIM_SAMPLING_CONTAINER_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/subgraph.h"

namespace privim {

/// The subgraph container G_sub: the pool mini-batches are drawn from
/// during DP training (Figure 2, Module 1 output).
class SubgraphContainer {
 public:
  SubgraphContainer() = default;

  void Add(Subgraph subgraph) { subgraphs_.push_back(std::move(subgraph)); }

  /// Moves all subgraphs of `other` into this container (Algorithm 3,
  /// Line 7: G_sub = G_sub,stage1 + G_sub,stage2).
  void Merge(SubgraphContainer&& other);

  size_t size() const { return subgraphs_.size(); }
  bool empty() const { return subgraphs_.empty(); }

  /// Unchecked element access for hot loops. Precondition: i < size().
  const Subgraph& operator[](size_t i) const { return subgraphs_[i]; }

  /// Checked element access: OutOfRange (with the offending index in the
  /// message) instead of an exception when `i` is out of bounds.
  Result<const Subgraph*> Get(size_t i) const;

  const std::vector<Subgraph>& subgraphs() const { return subgraphs_; }

  /// Counts how often each original node occurs across all subgraphs.
  /// `num_original_nodes` sizes the histogram. Used to *audit* the privacy
  /// accountant's occurrence bound in tests and at runtime. A subgraph node
  /// id outside [0, num_original_nodes) is reported as OutOfRange naming
  /// the offending `subgraphs[i].nodes[j]` instead of aborting.
  Result<std::vector<size_t>> OccurrenceHistogram(
      size_t num_original_nodes) const;

  /// Maximum entry of OccurrenceHistogram (0 if empty).
  Result<size_t> MaxOccurrence(size_t num_original_nodes) const;

 private:
  std::vector<Subgraph> subgraphs_;
};

}  // namespace privim

#endif  // PRIVIM_SAMPLING_CONTAINER_H_
