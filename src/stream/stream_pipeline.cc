#include "stream/stream_pipeline.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "ckpt/binary_io.h"
#include "ckpt/checkpoint.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "im/diffusion.h"
#include "nn/features.h"
#include "shard/pipeline.h"

namespace privim {

namespace {

/// Stream id of the resident sketch's base key under options.seed
/// (disjoint from the per-batch generator streams, which use the batch
/// index directly, and from the per-round training keys below).
constexpr uint64_t kSketchStreamId = 0xB411;

/// Per-round training key: golden-ratio stride over the base seed, so
/// round r's key is a pure function of (seed, r) a resumed run rederives.
uint64_t RoundSeed(uint64_t base_seed, size_t round) {
  return base_seed ^ (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(round + 1));
}

/// Rebuilds a model shell from the stream's GNN config and loads `flat`
/// into it — the same shell-restore idiom RunMethod's resume path uses.
Result<std::unique_ptr<GnnModel>> RestoreModel(const GnnConfig& base_config,
                                               std::span<const float> flat) {
  GnnConfig gnn_cfg = base_config;
  gnn_cfg.in_dim = kNodeFeatureDim;
  Rng shell_rng(0x5eed);
  auto model = std::make_unique<GnnModel>(gnn_cfg, shell_rng);
  if (model->params().num_scalars() != flat.size()) {
    return Status::FailedPrecondition(StrFormat(
        "saved model has %zu parameters, this config builds %zu",
        flat.size(), model->params().num_scalars()));
  }
  std::vector<float> params(flat.begin(), flat.end());
  model->params().LoadParams(params);
  return model;
}

}  // namespace

StreamPipeline::StreamPipeline(Graph initial, StreamOptions options)
    : options_(std::move(options)),
      base_(std::make_unique<Graph>(std::move(initial))),
      policy_(options_.retrain),
      accountant_(options_.method.budget.delta) {}

Result<std::unique_ptr<StreamPipeline>> StreamPipeline::Build(
    Graph initial, StreamOptions options) {
  PRIVIM_RETURN_NOT_OK(options.method.Validate());
  if (options.rr_sketch_sets == 0) {
    return Status::InvalidArgument(
        "rr_sketch_sets must be >= 1: incremental sketch maintenance is "
        "the streaming pipeline's core service");
  }
  if (options.utility_steps < 0) {
    return Status::InvalidArgument("utility_steps must be >= 0");
  }
  if (initial.num_nodes() == 0) {
    return Status::InvalidArgument(
        "streaming needs a non-empty initial graph");
  }
  PRIVIM_RETURN_NOT_OK(initial.EnsureInCsr());
  std::unique_ptr<StreamPipeline> p(
      new StreamPipeline(std::move(initial), std::move(options)));
  // Binds checkpoints to (initial graph content, seed, sketch size): a
  // resume against any other stream is rejected, never silently replayed.
  p->fingerprint_ =
      GraphContentFingerprint(*p->base_, p->options_.seed) ^
      (0x9e3779b97f4a7c15ull *
       static_cast<uint64_t>(p->options_.rr_sketch_sets));
  p->delta_ = std::make_unique<GraphDelta>(*p->base_);
  p->workspaces_.EnsureSlots(1);
  const bool can_resume =
      p->options_.resume && !p->options_.checkpoint_dir.empty() &&
      FileExists(StreamCheckpointPath(p->options_.checkpoint_dir));
  if (can_resume) {
    PRIVIM_ASSIGN_OR_RETURN(
        StreamState state,
        LoadStreamState(StreamCheckpointPath(p->options_.checkpoint_dir)));
    PRIVIM_RETURN_NOT_OK(p->Restore(state));
  } else {
    PRIVIM_RETURN_NOT_OK(p->Init());
  }
  return p;
}

Status StreamPipeline::Init() {
  Rng sketch_rng = Rng::FromStreamKey(options_.seed, kSketchStreamId);
  PRIVIM_ASSIGN_OR_RETURN(
      sketch_, RrSketch::Generate(View(), options_.rr_sketch_sets,
                                  sketch_rng, options_.num_threads));
  // Round 0: the stream serves a trained model from the first batch on.
  PRIVIM_RETURN_NOT_OK(RetrainRound());
  if (!options_.checkpoint_dir.empty()) {
    PRIVIM_RETURN_NOT_OK(SaveCheckpoint());
  }
  return Status::OK();
}

Status StreamPipeline::Restore(const StreamState& state) {
  if (state.fingerprint != fingerprint_) {
    return Status::FailedPrecondition(
        "stream checkpoint was written by a different (initial graph, "
        "seed, sketch) configuration");
  }
  if (state.sketch_sets != options_.rr_sketch_sets) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint holds a %zu-set sketch, options ask for %zu",
        static_cast<size_t>(state.sketch_sets), options_.rr_sketch_sets));
  }
  // Replay the event log onto the initial graph. Skips (already-exists /
  // not-found) resolve identically to the original run — visibility is a
  // pure function of content — so the rebuilt overlay presents exactly
  // the view the killed run saw, regardless of how often it compacted.
  UpdateBatch replay;
  replay.events = state.event_log;
  PRIVIM_ASSIGN_OR_RETURN(const ApplyEffects fx,
                          ApplyUpdateBatch(*delta_, replay));
  (void)fx;
  event_log_ = state.event_log;
  PRIVIM_ASSIGN_OR_RETURN(accountant_,
                          ContinualAccountant::FromState(state.accountant));
  policy_ = RetrainPolicy(
      options_.retrain,
      RetrainPolicy::State{state.arcs_at_train, state.changed_since_train,
                           state.batches_since_train});
  seeds_ = state.seeds;
  seed_scores_ = state.seed_scores;
  history_ = state.history;
  batches_applied_ = state.batches_applied;
  // Round 0 always trains at Build; later rounds are flagged per row.
  num_retrains_ = 1;
  for (const StreamStepRecord& rec : history_) {
    if (rec.retrained != 0) ++num_retrains_;
  }
  if (state.has_model != 0) {
    PRIVIM_ASSIGN_OR_RETURN(
        model_, RestoreModel(options_.method.gnn, state.model_params));
  }
  // The sketch's contents are a pure function of (view, count, base key):
  // regeneration here is bit-identical to the incrementally repaired
  // sketch the killed run held (the Repair == Regenerate contract).
  PRIVIM_ASSIGN_OR_RETURN(
      sketch_, RrSketch::Regenerate(View(), state.sketch_sets,
                                    state.sketch_stream_base,
                                    options_.num_threads));
  return Status::OK();
}

Result<StreamStepRecord> StreamPipeline::ApplyBatch(
    const UpdateBatch& batch) {
  const auto start_time = std::chrono::steady_clock::now();
  PRIVIM_ASSIGN_OR_RETURN(const ApplyEffects fx,
                          ApplyUpdateBatch(*delta_, batch));
  // The log keeps skipped events too: replay re-skips them identically,
  // and dropping them would make resumed batch boundaries drift.
  event_log_.insert(event_log_.end(), batch.events.begin(),
                    batch.events.end());

  // Incremental sketch repair: only sets containing a changed in-row are
  // regenerated (a node-count change rebuilds all — Repair decides).
  PRIVIM_ASSIGN_OR_RETURN(
      const size_t repaired,
      sketch_.Repair(View(), fx.changed_in_rows, options_.num_threads));

  // Hop-ball invalidation: drop exactly the balls containing a changed
  // out-row; survivors are retargeted to the post-batch view below.
  size_t dropped = 0;
  const std::vector<NodeId>& changed_out = fx.changed_out_rows;
  for (size_t s = 0; s < workspaces_.size(); ++s) {
    dropped += workspaces_.Acquire(s).ball_cache.Invalidate(
        [&changed_out](uint32_t node) {
          return std::binary_search(changed_out.begin(), changed_out.end(),
                                    node);
        });
  }

  policy_.NoteBatch(fx.changed_arcs);
  bool retrained = false;
  if (policy_.ShouldRetrain()) {
    PRIVIM_RETURN_NOT_OK(RetrainRound());
    retrained = true;
  }

  const GraphView view = View();
  for (size_t s = 0; s < workspaces_.size(); ++s) {
    workspaces_.Acquire(s).ball_cache.Retarget(view.IdentityFingerprint());
  }

  StreamStepRecord rec;
  rec.batch = batches_applied_;
  rec.events_applied = fx.applied_events;
  rec.events_skipped = fx.skipped_events;
  rec.changed_out_rows = fx.changed_out_rows.size();
  rec.changed_in_rows = fx.changed_in_rows.size();
  rec.repaired_sets = repaired;
  rec.invalidated_balls = dropped;
  rec.retrained = retrained ? 1 : 0;
  rec.visible_nodes = view.num_nodes();
  rec.visible_arcs = view.num_edges();
  rec.cumulative_epsilon = accountant_.CumulativeEpsilon();
  rec.utility = static_cast<double>(ExactUnitWeightSpread(
      view, seeds_, options_.utility_steps, workspaces_.Acquire(0)));
  rec.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_time)
                    .count();
  history_.push_back(rec);
  ++batches_applied_;
  if (!options_.checkpoint_dir.empty()) {
    PRIVIM_RETURN_NOT_OK(SaveCheckpoint());
  }
  return rec;
}

Result<StreamStepRecord> StreamPipeline::Step() {
  const UpdateBatch batch = MakeSyntheticBatch(
      View(), batches_applied_, options_.seed, options_.gen);
  return ApplyBatch(batch);
}

Status StreamPipeline::RetrainRound() {
  // The facade consumes its graphs; compaction is deterministic, so the
  // two copies are content-identical.
  PRIVIM_ASSIGN_OR_RETURN(Graph train_graph, delta_->Compact());
  PRIVIM_ASSIGN_OR_RETURN(Graph eval_graph, delta_->Compact());
  PipelineConfig pipeline_config;
  pipeline_config.method = options_.method;
  // The stream checkpoints at batch boundaries; per-round inner snapshots
  // would fight over the directory.
  pipeline_config.method.checkpoint = CheckpointOptions{};
  pipeline_config.method.runtime.num_threads = options_.num_threads;
  pipeline_config.seed = RoundSeed(options_.seed, num_retrains_);
  PRIVIM_ASSIGN_OR_RETURN(
      Pipeline pipeline,
      Pipeline::Build(std::move(train_graph), std::move(eval_graph),
                      std::move(pipeline_config)));
  PRIVIM_ASSIGN_OR_RETURN(PipelineRunResult result, pipeline.Run());
  if (result.model == nullptr) {
    return Status::Internal("serial pipeline run returned no model");
  }
  if (options_.method.method != Method::kNonPrivate &&
      result.run.sigma > 0.0) {
    DpSgdSpec spec;
    spec.max_occurrences = result.run.occurrence_bound;
    spec.container_size = result.run.container_size;
    spec.batch_size =
        std::min(options_.method.train.batch_size,
                 result.run.container_size);
    spec.iterations = options_.method.train.iterations;
    spec.clip_bound = result.run.clip_bound_used;
    PRIVIM_RETURN_NOT_OK(accountant_.AddRound(spec, result.run.sigma)
                             .status());
  }
  seeds_ = std::move(result.seeds);
  seed_scores_ = std::move(result.seed_scores);
  model_ = std::move(result.model);
  ++num_retrains_;
  // Compact the overlay back into the substrate and re-base the delta —
  // the view's content (and therefore the sketch) is unchanged.
  PRIVIM_ASSIGN_OR_RETURN(Graph new_base, delta_->Compact());
  PRIVIM_RETURN_NOT_OK(Rebase(std::move(new_base)));
  policy_.NoteTrained(static_cast<uint64_t>(delta_->num_edges()));
  return Status::OK();
}

Status StreamPipeline::Rebase(Graph compacted) {
  auto fresh = std::make_unique<Graph>(std::move(compacted));
  // Repoint the delta before retiring the old base.
  PRIVIM_RETURN_NOT_OK(delta_->ResetBase(*fresh));
  base_ = std::move(fresh);
  return Status::OK();
}

StreamState StreamPipeline::ExportState() const {
  StreamState state;
  state.fingerprint = fingerprint_;
  state.batches_applied = batches_applied_;
  state.event_log = event_log_;
  state.accountant = accountant_.ToState();
  state.arcs_at_train = policy_.state().arcs_at_train;
  state.changed_since_train = policy_.state().changed_since_train;
  state.batches_since_train = policy_.state().batches_since_train;
  state.seeds = seeds_;
  state.seed_scores = seed_scores_;
  if (model_ != nullptr) {
    state.has_model = 1;
    state.model_params.resize(model_->params().num_scalars());
    model_->params().FlattenParams(state.model_params);
  }
  state.sketch_stream_base = sketch_.stream_base();
  state.sketch_sets = sketch_.num_sets();
  state.history = history_;
  return state;
}

Status StreamPipeline::SaveCheckpoint() const {
  return SaveStreamState(ExportState(),
                         StreamCheckpointPath(options_.checkpoint_dir));
}

Result<std::shared_ptr<const ModelSnapshot>>
StreamPipeline::MakeServingSnapshot() const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition(
        "no trained model to publish; the stream has not completed a "
        "training round");
  }
  PRIVIM_ASSIGN_OR_RETURN(Graph compacted, delta_->Compact());
  auto graph = std::make_shared<const Graph>(std::move(compacted));
  // The snapshot gets its own model instance (the stream keeps training
  // the original): shell + flat-parameter copy.
  std::vector<float> flat(model_->params().num_scalars());
  model_->params().FlattenParams(flat);
  PRIVIM_ASSIGN_OR_RETURN(std::unique_ptr<GnnModel> clone,
                          RestoreModel(options_.method.gnn, flat));
  return ModelSnapshot::FromModel(std::move(clone), std::move(graph));
}

Status StreamPipeline::PublishTo(Server& server) const {
  PRIVIM_ASSIGN_OR_RETURN(std::shared_ptr<const ModelSnapshot> snapshot,
                          MakeServingSnapshot());
  return server.SwapGraphAndSnapshot(std::move(snapshot));
}

}  // namespace privim
