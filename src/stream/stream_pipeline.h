#ifndef PRIVIM_STREAM_STREAM_PIPELINE_H_
#define PRIVIM_STREAM_STREAM_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/stream_state.h"
#include "common/result.h"
#include "core/privim.h"
#include "core/retrain_policy.h"
#include "dp/continual_accountant.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "graph/graph_view.h"
#include "graph/update_stream.h"
#include "im/rr_sets.h"
#include "runtime/scratch.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace privim {

/// Configuration of one streaming run (docs/streaming.md).
struct StreamOptions {
  /// Method executed at every retraining round (through the Pipeline
  /// facade, serial path). `method.checkpoint` is ignored — the stream
  /// pipeline owns checkpointing at batch granularity; per-round inner
  /// snapshots are disabled.
  PrivImConfig method;
  /// When to retrain (drift / staleness triggers).
  RetrainPolicyConfig retrain;
  /// Synthetic-stream shape for Step() (drivers, benches, tests).
  StreamGenConfig gen;
  /// Resident RR-sketch size (must be >= 1: incremental sketch
  /// maintenance is the streaming pipeline's core service).
  size_t rr_sketch_sets = 256;
  /// Diffusion steps of the deterministic utility metric (the exact
  /// unit-weight spread of the released seeds on the current graph).
  int utility_steps = 1;
  /// Base RNG key: the synthetic stream, the sketch streams, and every
  /// retraining round derive their keys from it.
  uint64_t seed = 42;
  /// Worker threads for sketch generation/repair and retraining (0 = the
  /// global runtime default). Bit-identical for every value.
  size_t num_threads = 0;
  /// Directory for batch-boundary snapshots; empty disables them.
  std::string checkpoint_dir;
  /// Resume from checkpoint_dir's snapshot when one exists (fresh start
  /// otherwise).
  bool resume = false;
};

/// The dynamic-graph pipeline: a mutable GraphDelta overlay over a CSR
/// base absorbing a timestamped update stream, with incremental RR-sketch
/// repair, hop-ball cache invalidation, drift/staleness-triggered DP-GNN
/// retraining through the Pipeline facade, and continual-observation
/// privacy accounting (docs/streaming.md).
///
/// Per applied batch:
///  1. events mutate the overlay (ApplyUpdateBatch), reporting exactly
///     which adjacency rows changed;
///  2. the resident RR sketch repairs only the sets containing a changed
///     in-row (bit-identical to a from-scratch rebuild at the same RNG
///     stream), and hop-ball caches drop only the balls containing a
///     changed out-row — O(touched), never O(graph);
///  3. the retrain policy folds in the drift; when a trigger fires, the
///     overlay compacts to a fresh CSR, TrainDpGnn re-runs through
///     Pipeline::Build/Run on a per-round stream key, and the round's
///     (spec, sigma) is composed into the continual-observation ledger —
///     cumulative epsilon is monotone nondecreasing and never resets;
///  4. the deterministic utility of the currently released seeds is
///     evaluated on the post-batch graph and the row is appended to the
///     utility-vs-time-vs-epsilon history;
///  5. with a checkpoint directory configured, the full stream state
///     commits atomically (batch boundaries are the only commit points),
///     and a killed run resumes bit-identically.
///
/// Not thread-safe: one thread drives the stream (internal stages
/// parallelize per num_threads).
class StreamPipeline {
 public:
  /// Fresh start: takes the initial graph, trains round 0, generates the
  /// resident sketch. With options.resume and an existing snapshot in
  /// options.checkpoint_dir, restores instead: the event log replays onto
  /// `initial` (which must be the same initial graph — fingerprint
  /// checked), and sketch, accountant, policy, model, and history are
  /// restored bit-identically.
  static Result<std::unique_ptr<StreamPipeline>> Build(Graph initial,
                                                       StreamOptions options);

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Applies one externally supplied update batch (steps 1-5 above) and
  /// returns its history row.
  Result<StreamStepRecord> ApplyBatch(const UpdateBatch& batch);

  /// Applies the next synthetic batch: MakeSyntheticBatch at the current
  /// batch counter — a pure function of (options.seed, counter), so a
  /// resumed run regenerates the exact forward stream.
  Result<StreamStepRecord> Step();

  /// Read view of the current graph (base + overlay).
  GraphView View() const { return GraphView(*base_, delta_.get()); }

  uint64_t batches_applied() const { return batches_applied_; }
  const RrSketch& sketch() const { return sketch_; }
  const ContinualAccountant& accountant() const { return accountant_; }
  double CumulativeEpsilon() const { return accountant_.CumulativeEpsilon(); }
  const std::vector<StreamStepRecord>& history() const { return history_; }
  const std::vector<NodeId>& seeds() const { return seeds_; }
  const std::vector<double>& seed_scores() const { return seed_scores_; }
  /// Completed training rounds (round 0 included).
  size_t num_retrains() const { return num_retrains_; }
  bool has_model() const { return model_ != nullptr; }

  /// Full checkpointable state at the current batch boundary (what
  /// Save commits; exposed for the bit-identity tests).
  StreamState ExportState() const;

  /// Compacts the current graph and compiles the current model against it
  /// into a graph-owning ModelSnapshot — the unit
  /// Server::SwapGraphAndSnapshot publishes.
  Result<std::shared_ptr<const ModelSnapshot>> MakeServingSnapshot() const;

  /// MakeServingSnapshot + SwapGraphAndSnapshot: hot-swaps graph and
  /// model together on `server`.
  Status PublishTo(Server& server) const;

 private:
  StreamPipeline(Graph initial, StreamOptions options);

  Status Init();
  Status Restore(const StreamState& state);
  /// One retraining round: compact, train through the Pipeline facade,
  /// compose the round into the ledger, re-base the delta.
  Status RetrainRound();
  Status SaveCheckpoint() const;
  /// Installs `compacted` as the delta's new base (old base retired).
  Status Rebase(Graph compacted);

  StreamOptions options_;
  uint64_t fingerprint_ = 0;
  std::unique_ptr<Graph> base_;
  std::unique_ptr<GraphDelta> delta_;
  RrSketch sketch_;
  RetrainPolicy policy_;
  ContinualAccountant accountant_;
  std::unique_ptr<GnnModel> model_;
  std::vector<NodeId> seeds_;
  std::vector<double> seed_scores_;
  std::vector<UpdateEvent> event_log_;
  std::vector<StreamStepRecord> history_;
  uint64_t batches_applied_ = 0;
  size_t num_retrains_ = 0;
  /// Scratch for the utility evaluation; its ball cache participates in
  /// the per-batch invalidation (the O(ball) maintenance contract).
  mutable WorkspacePool workspaces_;
};

}  // namespace privim

#endif  // PRIVIM_STREAM_STREAM_PIPELINE_H_
