#include "nn/serialization.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace privim {

namespace {

constexpr char kMagic[] = "privim-gnn-v1";

}  // namespace

Status SaveModel(const GnnModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  const GnnConfig& cfg = model.config();
  out << kMagic << "\n";
  out << "type " << GnnTypeName(cfg.type) << "\n";
  out << "in_dim " << cfg.in_dim << "\n";
  out << "hidden_dim " << cfg.hidden_dim << "\n";
  out << "num_layers " << cfg.num_layers << "\n";
  out << "tensors " << model.params().num_tensors() << "\n";
  const ParamStore& store = model.params();
  // Full float precision so a reloaded model reproduces scores bit-close.
  out.precision(9);
  for (size_t i = 0; i < store.num_tensors(); ++i) {
    const Tensor& p = store.params()[i];
    out << "tensor " << store.names()[i] << " " << p.rows() << " "
        << p.cols() << "\n";
    for (size_t r = 0; r < p.rows(); ++r) {
      const float* row = p.value().row(r);
      for (size_t c = 0; c < p.cols(); ++c) {
        out << row[c] << (c + 1 == p.cols() ? '\n' : ' ');
      }
    }
  }
  if (!out) {
    return Status::IoError(StrFormat("write failed for '%s'", path.c_str()));
  }
  return Status::OK();
}

namespace {

/// Parsed checkpoint header (Result-first: no out-parameters).
struct ModelHeader {
  GnnConfig config;
  size_t num_tensors = 0;
};

/// Every header diagnostic names the offending file: a serving operator
/// pointing --snapshot at the wrong artifact gets the path and a hint, not
/// a bare parse failure (tests/nn/serialization_test.cc pins this).
Result<ModelHeader> ReadHeader(std::istream& in, const std::string& path) {
  std::string magic;
  if (!std::getline(in, magic) || Trim(magic) != kMagic) {
    return Status::IoError(StrFormat(
        "'%s' is not a PrivIM model checkpoint (expected magic '%s'); the "
        "file may be from an incompatible model-format version, or a "
        "pipeline/trainer snapshot from --checkpoint-dir — model "
        "checkpoints are the files written by SaveModel / --save-model",
        path.c_str(), kMagic));
  }
  ModelHeader header;
  std::string key, value;
  const auto malformed = [&path](const char* field) {
    return Status::IoError(StrFormat(
        "model checkpoint '%s': missing '%s' header field (truncated or "
        "corrupted file, or a different model-format version)",
        path.c_str(), field));
  };
  // type
  in >> key >> value;
  if (key != "type") return malformed("type");
  PRIVIM_ASSIGN_OR_RETURN(header.config.type, ParseGnnType(value));
  in >> key >> header.config.in_dim;
  if (key != "in_dim") return malformed("in_dim");
  in >> key >> header.config.hidden_dim;
  if (key != "hidden_dim") return malformed("hidden_dim");
  in >> key >> header.config.num_layers;
  if (key != "num_layers") return malformed("num_layers");
  in >> key >> header.num_tensors;
  if (key != "tensors") return malformed("tensors");
  return header;
}

}  // namespace

Result<GnnConfig> LoadModelConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat(
        "cannot open model checkpoint '%s'", path.c_str()));
  }
  PRIVIM_ASSIGN_OR_RETURN(ModelHeader header, ReadHeader(in, path));
  return header.config;
}

Status LoadModelParams(const std::string& path, GnnModel& model) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat(
        "cannot open model checkpoint '%s'", path.c_str()));
  }
  PRIVIM_ASSIGN_OR_RETURN(ModelHeader header, ReadHeader(in, path));
  const GnnConfig& cfg = header.config;
  const size_t num_tensors = header.num_tensors;
  const GnnConfig& want = model.config();
  if (cfg.type != want.type || cfg.in_dim != want.in_dim ||
      cfg.hidden_dim != want.hidden_dim ||
      cfg.num_layers != want.num_layers) {
    return Status::FailedPrecondition(StrFormat(
        "model checkpoint '%s' holds a %s[in=%zu,hidden=%zu,layers=%zu] "
        "model but the target model is %s[in=%zu,hidden=%zu,layers=%zu]; "
        "the checkpoint likely comes from a run with a different --gnn or "
        "feature configuration",
        path.c_str(), GnnTypeName(cfg.type).c_str(), cfg.in_dim,
        cfg.hidden_dim, cfg.num_layers, GnnTypeName(want.type).c_str(),
        want.in_dim, want.hidden_dim, want.num_layers));
  }
  if (num_tensors != model.params().num_tensors()) {
    return Status::FailedPrecondition(StrFormat(
        "model checkpoint '%s' has %zu tensors, model has %zu (stale or "
        "version-mismatched checkpoint)",
        path.c_str(), num_tensors, model.params().num_tensors()));
  }

  std::vector<float> flat(model.params().num_scalars());
  size_t pos = 0;
  for (size_t i = 0; i < num_tensors; ++i) {
    std::string tag, name;
    size_t rows = 0, cols = 0;
    if (!(in >> tag >> name >> rows >> cols) || tag != "tensor") {
      return Status::IoError(StrFormat(
          "model checkpoint '%s': malformed tensor block %zu", path.c_str(),
          i));
    }
    const Tensor& p = model.params().params()[i];
    if (name != model.params().names()[i] || rows != p.rows() ||
        cols != p.cols()) {
      return Status::FailedPrecondition(StrFormat(
          "model checkpoint '%s': tensor %zu mismatch: checkpoint %s[%zux%zu]"
          " vs model %s[%zux%zu]",
          path.c_str(), i, name.c_str(), rows, cols,
          model.params().names()[i].c_str(), p.rows(), p.cols()));
    }
    for (size_t k = 0; k < rows * cols; ++k) {
      if (!(in >> flat[pos])) {
        return Status::IoError(StrFormat(
            "model checkpoint '%s': truncated values in tensor '%s'",
            path.c_str(), name.c_str()));
      }
      ++pos;
    }
  }
  model.params().LoadParams(flat);
  return Status::OK();
}

Result<std::unique_ptr<GnnModel>> LoadModel(const std::string& path) {
  PRIVIM_ASSIGN_OR_RETURN(GnnConfig cfg, LoadModelConfig(path));
  // The init randomness is overwritten by the stored parameters, so a
  // fixed throwaway seed keeps LoadModel deterministic and argument-free.
  Rng init_rng(0x10ad);
  auto model = std::make_unique<GnnModel>(cfg, init_rng);
  PRIVIM_RETURN_NOT_OK(LoadModelParams(path, *model));
  return model;
}

}  // namespace privim
