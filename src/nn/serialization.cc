#include "nn/serialization.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace privim {

namespace {

constexpr char kMagic[] = "privim-gnn-v1";

}  // namespace

Status SaveModel(const GnnModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  const GnnConfig& cfg = model.config();
  out << kMagic << "\n";
  out << "type " << GnnTypeName(cfg.type) << "\n";
  out << "in_dim " << cfg.in_dim << "\n";
  out << "hidden_dim " << cfg.hidden_dim << "\n";
  out << "num_layers " << cfg.num_layers << "\n";
  out << "tensors " << model.params().num_tensors() << "\n";
  const ParamStore& store = model.params();
  // Full float precision so a reloaded model reproduces scores bit-close.
  out.precision(9);
  for (size_t i = 0; i < store.num_tensors(); ++i) {
    const Tensor& p = store.params()[i];
    out << "tensor " << store.names()[i] << " " << p.rows() << " "
        << p.cols() << "\n";
    for (size_t r = 0; r < p.rows(); ++r) {
      const float* row = p.value().row(r);
      for (size_t c = 0; c < p.cols(); ++c) {
        out << row[c] << (c + 1 == p.cols() ? '\n' : ' ');
      }
    }
  }
  if (!out) {
    return Status::IoError(StrFormat("write failed for '%s'", path.c_str()));
  }
  return Status::OK();
}

namespace {

/// Parsed checkpoint header (Result-first: no out-parameters).
struct ModelHeader {
  GnnConfig config;
  size_t num_tensors = 0;
};

Result<ModelHeader> ReadHeader(std::istream& in) {
  std::string magic;
  if (!std::getline(in, magic) || Trim(magic) != kMagic) {
    return Status::IoError("not a privim model checkpoint");
  }
  ModelHeader header;
  std::string key, value;
  // type
  in >> key >> value;
  if (key != "type") return Status::IoError("missing 'type' field");
  PRIVIM_ASSIGN_OR_RETURN(header.config.type, ParseGnnType(value));
  in >> key >> header.config.in_dim;
  if (key != "in_dim") return Status::IoError("missing 'in_dim' field");
  in >> key >> header.config.hidden_dim;
  if (key != "hidden_dim") {
    return Status::IoError("missing 'hidden_dim' field");
  }
  in >> key >> header.config.num_layers;
  if (key != "num_layers") {
    return Status::IoError("missing 'num_layers' field");
  }
  in >> key >> header.num_tensors;
  if (key != "tensors") return Status::IoError("missing 'tensors' field");
  return header;
}

}  // namespace

Result<GnnConfig> LoadModelConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  PRIVIM_ASSIGN_OR_RETURN(ModelHeader header, ReadHeader(in));
  return header.config;
}

Status LoadModelParams(const std::string& path, GnnModel& model) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  PRIVIM_ASSIGN_OR_RETURN(ModelHeader header, ReadHeader(in));
  const GnnConfig& cfg = header.config;
  const size_t num_tensors = header.num_tensors;
  const GnnConfig& want = model.config();
  if (cfg.type != want.type || cfg.in_dim != want.in_dim ||
      cfg.hidden_dim != want.hidden_dim ||
      cfg.num_layers != want.num_layers) {
    return Status::FailedPrecondition(
        "model configuration does not match checkpoint header");
  }
  if (num_tensors != model.params().num_tensors()) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint has %zu tensors, model has %zu", num_tensors,
        model.params().num_tensors()));
  }

  std::vector<float> flat(model.params().num_scalars());
  size_t pos = 0;
  for (size_t i = 0; i < num_tensors; ++i) {
    std::string tag, name;
    size_t rows = 0, cols = 0;
    if (!(in >> tag >> name >> rows >> cols) || tag != "tensor") {
      return Status::IoError(
          StrFormat("malformed tensor block %zu", i));
    }
    const Tensor& p = model.params().params()[i];
    if (name != model.params().names()[i] || rows != p.rows() ||
        cols != p.cols()) {
      return Status::FailedPrecondition(StrFormat(
          "tensor %zu mismatch: checkpoint %s[%zux%zu] vs model %s[%zux%zu]",
          i, name.c_str(), rows, cols, model.params().names()[i].c_str(),
          p.rows(), p.cols()));
    }
    for (size_t k = 0; k < rows * cols; ++k) {
      if (!(in >> flat[pos])) {
        return Status::IoError(
            StrFormat("truncated values in tensor '%s'", name.c_str()));
      }
      ++pos;
    }
  }
  model.params().LoadParams(flat);
  return Status::OK();
}

Result<std::unique_ptr<GnnModel>> LoadModel(const std::string& path) {
  PRIVIM_ASSIGN_OR_RETURN(GnnConfig cfg, LoadModelConfig(path));
  // The init randomness is overwritten by the stored parameters, so a
  // fixed throwaway seed keeps LoadModel deterministic and argument-free.
  Rng init_rng(0x10ad);
  auto model = std::make_unique<GnnModel>(cfg, init_rng);
  PRIVIM_RETURN_NOT_OK(LoadModelParams(path, *model));
  return model;
}

}  // namespace privim
