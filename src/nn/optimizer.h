#ifndef PRIVIM_NN_OPTIMIZER_H_
#define PRIVIM_NN_OPTIMIZER_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/param_store.h"

namespace privim {

/// Serializable snapshot of an optimizer's internal state, the unit the
/// checkpoint layer persists (src/ckpt/). `kind` is the self-describing
/// discriminator ("sgd" has no state beyond the config-owned learning rate;
/// "adam" carries the step count and both moment vectors).
struct OptimizerState {
  std::string kind;
  int64_t step = 0;
  std::vector<float> m;
  std::vector<float> v;

  bool operator==(const OptimizerState&) const = default;
};

/// Optimizers consume an externally produced flat gradient (possibly the
/// noisy, clipped DP gradient) and update a ParamStore. Keeping them
/// gradient-agnostic lets the DP trainer own noise injection.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update from `grad` (length store.num_scalars()).
  virtual void Step(ParamStore& store, std::span<const float> grad) = 0;

  /// Snapshot of the mutable state (checkpointing). Stateless optimizers
  /// return just their kind tag.
  virtual OptimizerState ExportState() const = 0;

  /// Restores a state produced by ExportState on an optimizer of the same
  /// kind; fails on kind or shape mismatch so a checkpoint written by a
  /// different configuration cannot be silently misapplied.
  virtual Status RestoreState(const OptimizerState& state) = 0;
};

/// Plain SGD: w <- w - lr * g (Algorithm 2, Line 9).
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(float lr) : lr_(lr) {}
  void Step(ParamStore& store, std::span<const float> grad) override;
  OptimizerState ExportState() const override;
  Status RestoreState(const OptimizerState& state) override;

  float learning_rate() const { return lr_; }

 private:
  float lr_;
};

/// Adam (Kingma & Ba). Used by the non-private reference configuration.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                         float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void Step(ParamStore& store, std::span<const float> grad) override;
  OptimizerState ExportState() const override;
  Status RestoreState(const OptimizerState& state) override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<float> m_;
  std::vector<float> v_;
};

}  // namespace privim

#endif  // PRIVIM_NN_OPTIMIZER_H_
