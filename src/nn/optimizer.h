#ifndef PRIVIM_NN_OPTIMIZER_H_
#define PRIVIM_NN_OPTIMIZER_H_

#include <span>
#include <vector>

#include "nn/param_store.h"

namespace privim {

/// Optimizers consume an externally produced flat gradient (possibly the
/// noisy, clipped DP gradient) and update a ParamStore. Keeping them
/// gradient-agnostic lets the DP trainer own noise injection.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update from `grad` (length store.num_scalars()).
  virtual void Step(ParamStore& store, std::span<const float> grad) = 0;
};

/// Plain SGD: w <- w - lr * g (Algorithm 2, Line 9).
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(float lr) : lr_(lr) {}
  void Step(ParamStore& store, std::span<const float> grad) override;

  float learning_rate() const { return lr_; }

 private:
  float lr_;
};

/// Adam (Kingma & Ba). Used by the non-private reference configuration.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                         float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void Step(ParamStore& store, std::span<const float> grad) override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<float> m_;
  std::vector<float> v_;
};

}  // namespace privim

#endif  // PRIVIM_NN_OPTIMIZER_H_
