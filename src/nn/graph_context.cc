#include "nn/graph_context.h"

#include <cmath>

namespace privim {

GraphContext BuildGraphContext(const Graph& g) {
  GraphContext ctx;
  ctx.num_nodes = g.num_nodes();
  const size_t num_arcs = g.num_edges() + g.num_nodes();
  ctx.src.reserve(num_arcs);
  ctx.dst.reserve(num_arcs);
  ctx.weight.reserve(num_arcs);
  ctx.is_self_loop.reserve(num_arcs);

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      ctx.src.push_back(u);
      ctx.dst.push_back(nbrs[i]);
      ctx.weight.push_back(ws[i]);
      ctx.is_self_loop.push_back(0);
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ctx.src.push_back(u);
    ctx.dst.push_back(u);
    ctx.weight.push_back(1.0f);
    ctx.is_self_loop.push_back(1);
  }

  const size_t e_count = ctx.src.size();
  ctx.gcn_coef.resize(e_count);
  ctx.mean_coef.resize(e_count);
  ctx.sum_coef.resize(e_count);
  ctx.ic_coef.resize(e_count);
  for (size_t e = 0; e < e_count; ++e) {
    const double d_src = static_cast<double>(g.OutDegree(ctx.src[e])) + 1.0;
    const double d_dst = static_cast<double>(g.InDegree(ctx.dst[e])) + 1.0;
    ctx.gcn_coef[e] = static_cast<float>(1.0 / std::sqrt(d_src * d_dst));
    ctx.mean_coef[e] = static_cast<float>(1.0 / d_dst);
    ctx.sum_coef[e] = ctx.is_self_loop[e] ? 0.0f : 1.0f;
    ctx.ic_coef[e] = ctx.is_self_loop[e] ? 0.0f : ctx.weight[e];
  }
  return ctx;
}

}  // namespace privim
