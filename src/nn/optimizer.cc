#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace privim {

void SgdOptimizer::Step(ParamStore& store, std::span<const float> grad) {
  store.ApplyUpdate(grad, lr_);
}

OptimizerState SgdOptimizer::ExportState() const {
  OptimizerState state;
  state.kind = "sgd";
  return state;
}

Status SgdOptimizer::RestoreState(const OptimizerState& state) {
  if (state.kind != "sgd") {
    return Status::FailedPrecondition(
        "optimizer state kind '" + state.kind + "' does not match sgd");
  }
  return Status::OK();
}

void AdamOptimizer::Step(ParamStore& store, std::span<const float> grad) {
  const size_t n = store.num_scalars();
  PRIVIM_CHECK_EQ(grad.size(), n);
  if (m_.size() != n) {
    m_.assign(n, 0.0f);
    v_.assign(n, 0.0f);
    t_ = 0;
  }
  ++t_;
  std::vector<float> update(n);
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < n; ++i) {
    m_[i] = beta1_ * m_[i] + (1.0f - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0f - beta2_) * grad[i] * grad[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    update[i] = static_cast<float>(mhat / (std::sqrt(vhat) + eps_));
  }
  store.ApplyUpdate(update, lr_);
}

OptimizerState AdamOptimizer::ExportState() const {
  OptimizerState state;
  state.kind = "adam";
  state.step = t_;
  state.m = m_;
  state.v = v_;
  return state;
}

Status AdamOptimizer::RestoreState(const OptimizerState& state) {
  if (state.kind != "adam") {
    return Status::FailedPrecondition(
        "optimizer state kind '" + state.kind + "' does not match adam");
  }
  if (state.m.size() != state.v.size()) {
    return Status::FailedPrecondition(
        "adam optimizer state has mismatched moment vector sizes");
  }
  t_ = state.step;
  m_ = state.m;
  v_ = state.v;
  return Status::OK();
}

}  // namespace privim
