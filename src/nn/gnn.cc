#include "nn/gnn.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"
#include "tensor/ops.h"

namespace privim {

Result<GnnType> ParseGnnType(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "gcn") return GnnType::kGcn;
  if (lower == "sage" || lower == "graphsage") return GnnType::kSage;
  if (lower == "gin") return GnnType::kGin;
  if (lower == "gat") return GnnType::kGat;
  if (lower == "grat") return GnnType::kGrat;
  return Status::NotFound(StrFormat("unknown GNN type '%s'", name.c_str()));
}

std::string GnnTypeName(GnnType type) {
  switch (type) {
    case GnnType::kGcn:
      return "GCN";
    case GnnType::kSage:
      return "GraphSAGE";
    case GnnType::kGin:
      return "GIN";
    case GnnType::kGat:
      return "GAT";
    case GnnType::kGrat:
      return "GRAT";
  }
  return "?";
}

namespace {

std::unique_ptr<GnnLayer> MakeLayer(GnnType type, size_t in_dim,
                                    size_t out_dim, ParamStore& store,
                                    Rng& rng, const std::string& name) {
  switch (type) {
    case GnnType::kGcn:
      return std::make_unique<GcnConv>(in_dim, out_dim, store, rng, name);
    case GnnType::kSage:
      return std::make_unique<SageConv>(in_dim, out_dim, store, rng, name);
    case GnnType::kGin:
      return std::make_unique<GinConv>(in_dim, out_dim, store, rng, name);
    case GnnType::kGat:
      return std::make_unique<AttentionConv>(
          in_dim, out_dim, AttentionNorm::kTarget, store, rng, name);
    case GnnType::kGrat:
      return std::make_unique<AttentionConv>(
          in_dim, out_dim, AttentionNorm::kSource, store, rng, name);
  }
  PRIVIM_CHECK(false) << "unknown GnnType";
  return nullptr;
}

}  // namespace

GnnModel::GnnModel(const GnnConfig& config, Rng& rng) : config_(config) {
  PRIVIM_CHECK_GE(config.num_layers, 1u);
  size_t in_dim = config.in_dim;
  for (size_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(MakeLayer(config.type, in_dim, config.hidden_dim,
                                params_, rng,
                                StrFormat("layer%zu", l)));
    in_dim = config.hidden_dim;
  }
  head_weight_ = params_.NewGlorot("head.W", config.hidden_dim, 1, rng);
  head_bias_ = params_.NewConstant("head.b", 1, 1, 0.0f);
}

Tensor GnnModel::Forward(const GraphContext& ctx, const Tensor& x) const {
  return SigmoidOp(ForwardLogits(ctx, x));
}

Tensor GnnModel::ForwardLogits(const GraphContext& ctx,
                               const Tensor& x) const {
  PRIVIM_CHECK_EQ(x.rows(), ctx.num_nodes);
  PRIVIM_CHECK_EQ(x.cols(), config_.in_dim);
  Tensor h = x;
  for (const auto& layer : layers_) {
    // LeakyReLU between layers: the structural features are all
    // non-negative, so plain ReLU can kill an entire signal path at
    // unlucky initializations and collapse the seed scores to a constant.
    h = LeakyRelu(layer->Forward(ctx, h), 0.1f);
  }
  return AddRowBroadcast(MatMul(h, head_weight_), head_bias_);
}

PlanValId GnnModel::LowerLogits(PlanBuilder& pb, const GraphContext& ctx,
                                PlanValId x) const {
  PlanValId h = x;
  for (const auto& layer : layers_) {
    h = pb.LeakyRelu(layer->Lower(pb, params_, ctx, h), 0.1f);
  }
  const PlanValId hw = pb.Param(params_.OffsetOf(head_weight_),
                                head_weight_.rows(), head_weight_.cols());
  const PlanValId hb = pb.Param(params_.OffsetOf(head_bias_), 1, 1);
  return pb.AddRowBroadcast(pb.MatMul(h, hw), hb);
}

GnnPlan GnnModel::Compile(const GraphContext& ctx,
                          const PlanOptions& opts) const {
  PlanBuilder pb;
  const PlanValId x = pb.Input(ctx.num_nodes, config_.in_dim);
  return pb.Build(pb.Sigmoid(LowerLogits(pb, ctx, x)), opts);
}

}  // namespace privim
