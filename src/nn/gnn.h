#ifndef PRIVIM_NN_GNN_H_
#define PRIVIM_NN_GNN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "nn/graph_context.h"
#include "nn/layers.h"
#include "nn/param_store.h"
#include "tensor/plan.h"
#include "tensor/tensor.h"

namespace privim {

/// GNN backbones evaluated in the paper (Section V-E / Appendix G).
enum class GnnType { kGcn, kSage, kGin, kGat, kGrat };

/// Parses "gcn", "graphsage"/"sage", "gin", "gat", "grat".
Result<GnnType> ParseGnnType(const std::string& name);
std::string GnnTypeName(GnnType type);

/// A compiled, reusable forward(+backward) program for one
/// (GnnConfig, GraphContext) pair — see tensor/plan.h. Derived state:
/// recompiled on demand, never serialized.
using GnnPlan = ExecutionPlan;

/// Hyper-parameters of the seed-scoring GNN. Defaults match the paper:
/// three layers of 32 hidden units.
struct GnnConfig {
  GnnType type = GnnType::kGrat;
  size_t in_dim = 8;
  size_t hidden_dim = 32;
  size_t num_layers = 3;
};

/// A stack of message-passing layers followed by a linear head and sigmoid,
/// producing a per-node probability of inclusion in the seed set.
///
/// One model instance owns its ParamStore; the same parameters are used for
/// every subgraph in training and for the full graph at inference.
class GnnModel {
 public:
  /// Builds and initializes the model. Parameters are drawn from `rng`.
  GnnModel(const GnnConfig& config, Rng& rng);

  GnnModel(const GnnModel&) = delete;
  GnnModel& operator=(const GnnModel&) = delete;

  /// Forward pass: features `x` is [ctx.num_nodes, in_dim]; returns a
  /// [num_nodes, 1] tensor of seed probabilities in (0, 1).
  Tensor Forward(const GraphContext& ctx, const Tensor& x) const;

  /// Pre-sigmoid seed scores. Monotone in Forward()'s probabilities but
  /// free of float32 sigmoid saturation, so top-k ranking stays sharp even
  /// when many probabilities round to 1.0 (used at inference).
  Tensor ForwardLogits(const GraphContext& ctx, const Tensor& x) const;

  /// Compiles the Forward() computation against `ctx` into a reusable
  /// plan whose output is the [num_nodes, 1] seed-probability matrix.
  /// Execute with the flat parameter vector (params().FlattenParams) and
  /// the feature matrix. With the default PlanOptions::Reference()
  /// results are bit-identical to Forward(); optimized options
  /// (PlanOptions::Native()) trade bit-identity for fused/SIMD speed under
  /// the tolerance contract of docs/performance.md. The plan borrows
  /// `ctx`'s edge vectors and must not outlive them. Training composes
  /// LowerLogits with the loss lowering instead (see core/plan_cache.h).
  GnnPlan Compile(const GraphContext& ctx,
                  const PlanOptions& opts = PlanOptions()) const;

  /// Records the ForwardLogits computation into `pb` (input `x` must be
  /// [ctx.num_nodes, in_dim]) and returns the [num_nodes, 1] logits value
  /// id. Building block for Compile() and for training plans that append
  /// the loss lowering.
  PlanValId LowerLogits(PlanBuilder& pb, const GraphContext& ctx,
                        PlanValId x) const;

  const GnnConfig& config() const { return config_; }
  ParamStore& params() { return params_; }
  const ParamStore& params() const { return params_; }

 private:
  GnnConfig config_;
  ParamStore params_;
  std::vector<std::unique_ptr<GnnLayer>> layers_;
  Tensor head_weight_;  // [hidden_dim, 1]
  Tensor head_bias_;    // [1, 1]
};

}  // namespace privim

#endif  // PRIVIM_NN_GNN_H_
