#ifndef PRIVIM_NN_FEATURES_H_
#define PRIVIM_NN_FEATURES_H_

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace privim {

/// Number of structural feature columns produced by BuildNodeFeatures.
inline constexpr size_t kNodeFeatureDim = 8;

/// Builds the [num_nodes, kNodeFeatureDim] structural feature matrix used
/// as GNN input. The paper's datasets carry no node attributes, so PrivIM
/// derives features from local structure (degree profile and neighborhood
/// mass). All features are scale-normalized per graph so models transfer
/// between training subgraphs and the full evaluation graph.
///
/// Columns:
///   0: constant 1 (bias channel)
///   1: out-degree / max out-degree
///   2: in-degree / max in-degree
///   3: log(1 + out-degree), normalized
///   4: log(1 + in-degree), normalized
///   5: 2-hop out-mass (sum of out-neighbors' out-degree), normalized
///   6: reciprocal-edge fraction among out-neighbors
///   7: 1 / (1 + out-degree)
Matrix BuildNodeFeatures(const Graph& g);

}  // namespace privim

#endif  // PRIVIM_NN_FEATURES_H_
