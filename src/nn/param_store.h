#ifndef PRIVIM_NN_PARAM_STORE_H_
#define PRIVIM_NN_PARAM_STORE_H_

#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace privim {

/// Owns a model's trainable parameters and provides the flat-vector views
/// DP-SGD needs (per-sample gradient flattening, noisy updates).
class ParamStore {
 public:
  ParamStore() = default;

  // Parameter tensors are shared handles; copying the store would alias
  // them confusingly, so forbid it.
  ParamStore(const ParamStore&) = delete;
  ParamStore& operator=(const ParamStore&) = delete;
  ParamStore(ParamStore&&) = default;
  ParamStore& operator=(ParamStore&&) = default;

  /// Creates a [rows, cols] parameter initialized Glorot-uniform with the
  /// given fan-in/fan-out (pass 0/0 to use rows/cols).
  Tensor NewGlorot(const std::string& name, size_t rows, size_t cols,
                   Rng& rng, size_t fan_in = 0, size_t fan_out = 0);

  /// Creates a parameter filled with a constant.
  Tensor NewConstant(const std::string& name, size_t rows, size_t cols,
                     float value);

  /// Offset of parameter `t` in the flat vectors (FlattenParams /
  /// FlattenGrads order). `t` must be a tensor created by this store
  /// (matched by node identity, not by value).
  size_t OffsetOf(const Tensor& t) const;

  size_t num_tensors() const { return params_.size(); }
  /// Total number of scalar parameters.
  size_t num_scalars() const { return num_scalars_; }

  const std::vector<Tensor>& params() const { return params_; }
  const std::vector<std::string>& names() const { return names_; }

  /// Zeroes every parameter gradient (call between per-sample passes).
  void ZeroGrads();

  /// Copies all gradients into `out` (size must equal num_scalars()).
  void FlattenGrads(std::span<float> out) const;

  /// Copies all parameter values into `out`.
  void FlattenParams(std::span<float> out) const;

  /// Overwrites parameter values from `in`.
  void LoadParams(std::span<const float> in);

  /// In-place update: params -= step * delta (delta flat, length
  /// num_scalars()).
  void ApplyUpdate(std::span<const float> delta, float step);

 private:
  std::vector<Tensor> params_;
  std::vector<std::string> names_;
  size_t num_scalars_ = 0;
};

}  // namespace privim

#endif  // PRIVIM_NN_PARAM_STORE_H_
