#include "nn/layers.h"

#include "tensor/ops.h"

namespace privim {

GcnConv::GcnConv(size_t in_dim, size_t out_dim, ParamStore& store, Rng& rng,
                 const std::string& name)
    : weight_(store.NewGlorot(name + ".W", in_dim, out_dim, rng)),
      bias_(store.NewConstant(name + ".b", 1, out_dim, 0.0f)),
      name_(name) {}

Tensor GcnConv::Forward(const GraphContext& ctx, const Tensor& x) const {
  Tensor agg =
      ScatterAddRows(x, ctx.src, ctx.dst, ctx.gcn_coef, ctx.num_nodes);
  return AddRowBroadcast(MatMul(agg, weight_), bias_);
}

SageConv::SageConv(size_t in_dim, size_t out_dim, ParamStore& store,
                   Rng& rng, const std::string& name)
    : weight_(store.NewGlorot(name + ".W", 2 * in_dim, out_dim, rng)),
      bias_(store.NewConstant(name + ".b", 1, out_dim, 0.0f)),
      name_(name) {}

Tensor SageConv::Forward(const GraphContext& ctx, const Tensor& x) const {
  Tensor mean =
      ScatterAddRows(x, ctx.src, ctx.dst, ctx.mean_coef, ctx.num_nodes);
  Tensor cat = ConcatCols(x, mean);
  return AddRowBroadcast(MatMul(cat, weight_), bias_);
}

GinConv::GinConv(size_t in_dim, size_t out_dim, ParamStore& store, Rng& rng,
                 const std::string& name)
    : w1_(store.NewGlorot(name + ".W1", in_dim, out_dim, rng)),
      b1_(store.NewConstant(name + ".b1", 1, out_dim, 0.0f)),
      w2_(store.NewGlorot(name + ".W2", out_dim, out_dim, rng)),
      b2_(store.NewConstant(name + ".b2", 1, out_dim, 0.0f)),
      omega_(store.NewConstant(name + ".omega", 1, 1, 0.0f)),
      name_(name) {}

Tensor GinConv::Forward(const GraphContext& ctx, const Tensor& x) const {
  Tensor neighbor_sum =
      ScatterAddRows(x, ctx.src, ctx.dst, ctx.sum_coef, ctx.num_nodes);
  // (1 + omega) * h_v: omega is a differentiable scalar.
  Tensor self = Add(x, ScaleByScalar(x, omega_));
  Tensor combined = Add(neighbor_sum, self);
  Tensor hidden = Relu(AddRowBroadcast(MatMul(combined, w1_), b1_));
  return AddRowBroadcast(MatMul(hidden, w2_), b2_);
}

AttentionConv::AttentionConv(size_t in_dim, size_t out_dim,
                             AttentionNorm norm, ParamStore& store, Rng& rng,
                             const std::string& name)
    : weight_(store.NewGlorot(name + ".W", in_dim, out_dim, rng)),
      att_src_(store.NewGlorot(name + ".a_src", out_dim, 1, rng)),
      att_dst_(store.NewGlorot(name + ".a_dst", out_dim, 1, rng)),
      norm_(norm),
      name_(name) {}

Tensor AttentionConv::Forward(const GraphContext& ctx,
                              const Tensor& x) const {
  Tensor xw = MatMul(x, weight_);  // [n, out_dim]
  // Per-node attention logits, then gathered per arc. The standard GATv1
  // decomposition a.[Wh_u || Wh_v] = a_src.Wh_u + a_dst.Wh_v.
  Tensor logit_src = MatMul(xw, att_src_);  // [n, 1]
  Tensor logit_dst = MatMul(xw, att_dst_);  // [n, 1]
  Tensor e = LeakyRelu(
      Add(GatherRows(logit_src, ctx.src), GatherRows(logit_dst, ctx.dst)),
      0.2f);
  const std::vector<uint32_t>& group =
      norm_ == AttentionNorm::kTarget ? ctx.dst : ctx.src;
  Tensor alpha = SegmentSoftmax(e, group, ctx.num_nodes);
  return WeightedScatterAddRows(alpha, xw, ctx.src, ctx.dst, ctx.num_nodes);
}

}  // namespace privim
