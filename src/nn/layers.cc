#include "nn/layers.h"

#include "tensor/ops.h"

namespace privim {

GcnConv::GcnConv(size_t in_dim, size_t out_dim, ParamStore& store, Rng& rng,
                 const std::string& name)
    : weight_(store.NewGlorot(name + ".W", in_dim, out_dim, rng)),
      bias_(store.NewConstant(name + ".b", 1, out_dim, 0.0f)),
      name_(name) {}

Tensor GcnConv::Forward(const GraphContext& ctx, const Tensor& x) const {
  Tensor agg =
      ScatterAddRows(x, ctx.src, ctx.dst, ctx.gcn_coef, ctx.num_nodes);
  return AddRowBroadcast(MatMul(agg, weight_), bias_);
}

PlanValId GcnConv::Lower(PlanBuilder& pb, const ParamStore& store,
                         const GraphContext& ctx, PlanValId x) const {
  const PlanValId agg =
      pb.ScatterAddRows(x, ctx.src, ctx.dst, ctx.gcn_coef, ctx.num_nodes);
  const PlanValId w =
      pb.Param(store.OffsetOf(weight_), weight_.rows(), weight_.cols());
  const PlanValId b = pb.Param(store.OffsetOf(bias_), 1, bias_.cols());
  return pb.AddRowBroadcast(pb.MatMul(agg, w), b);
}

SageConv::SageConv(size_t in_dim, size_t out_dim, ParamStore& store,
                   Rng& rng, const std::string& name)
    : weight_(store.NewGlorot(name + ".W", 2 * in_dim, out_dim, rng)),
      bias_(store.NewConstant(name + ".b", 1, out_dim, 0.0f)),
      name_(name) {}

Tensor SageConv::Forward(const GraphContext& ctx, const Tensor& x) const {
  Tensor mean =
      ScatterAddRows(x, ctx.src, ctx.dst, ctx.mean_coef, ctx.num_nodes);
  Tensor cat = ConcatCols(x, mean);
  return AddRowBroadcast(MatMul(cat, weight_), bias_);
}

PlanValId SageConv::Lower(PlanBuilder& pb, const ParamStore& store,
                          const GraphContext& ctx, PlanValId x) const {
  const PlanValId mean =
      pb.ScatterAddRows(x, ctx.src, ctx.dst, ctx.mean_coef, ctx.num_nodes);
  const PlanValId cat = pb.ConcatCols(x, mean);
  const PlanValId w =
      pb.Param(store.OffsetOf(weight_), weight_.rows(), weight_.cols());
  const PlanValId b = pb.Param(store.OffsetOf(bias_), 1, bias_.cols());
  return pb.AddRowBroadcast(pb.MatMul(cat, w), b);
}

GinConv::GinConv(size_t in_dim, size_t out_dim, ParamStore& store, Rng& rng,
                 const std::string& name)
    : w1_(store.NewGlorot(name + ".W1", in_dim, out_dim, rng)),
      b1_(store.NewConstant(name + ".b1", 1, out_dim, 0.0f)),
      w2_(store.NewGlorot(name + ".W2", out_dim, out_dim, rng)),
      b2_(store.NewConstant(name + ".b2", 1, out_dim, 0.0f)),
      omega_(store.NewConstant(name + ".omega", 1, 1, 0.0f)),
      name_(name) {}

Tensor GinConv::Forward(const GraphContext& ctx, const Tensor& x) const {
  Tensor neighbor_sum =
      ScatterAddRows(x, ctx.src, ctx.dst, ctx.sum_coef, ctx.num_nodes);
  // (1 + omega) * h_v: omega is a differentiable scalar.
  Tensor self = Add(x, ScaleByScalar(x, omega_));
  Tensor combined = Add(neighbor_sum, self);
  Tensor hidden = Relu(AddRowBroadcast(MatMul(combined, w1_), b1_));
  return AddRowBroadcast(MatMul(hidden, w2_), b2_);
}

PlanValId GinConv::Lower(PlanBuilder& pb, const ParamStore& store,
                         const GraphContext& ctx, PlanValId x) const {
  const PlanValId neighbor_sum =
      pb.ScatterAddRows(x, ctx.src, ctx.dst, ctx.sum_coef, ctx.num_nodes);
  const PlanValId omega = pb.Param(store.OffsetOf(omega_), 1, 1);
  const PlanValId self = pb.Add(x, pb.ScaleByScalar(x, omega));
  const PlanValId combined = pb.Add(neighbor_sum, self);
  const PlanValId w1 =
      pb.Param(store.OffsetOf(w1_), w1_.rows(), w1_.cols());
  const PlanValId b1 = pb.Param(store.OffsetOf(b1_), 1, b1_.cols());
  const PlanValId hidden =
      pb.Relu(pb.AddRowBroadcast(pb.MatMul(combined, w1), b1));
  const PlanValId w2 =
      pb.Param(store.OffsetOf(w2_), w2_.rows(), w2_.cols());
  const PlanValId b2 = pb.Param(store.OffsetOf(b2_), 1, b2_.cols());
  return pb.AddRowBroadcast(pb.MatMul(hidden, w2), b2);
}

AttentionConv::AttentionConv(size_t in_dim, size_t out_dim,
                             AttentionNorm norm, ParamStore& store, Rng& rng,
                             const std::string& name)
    : weight_(store.NewGlorot(name + ".W", in_dim, out_dim, rng)),
      att_src_(store.NewGlorot(name + ".a_src", out_dim, 1, rng)),
      att_dst_(store.NewGlorot(name + ".a_dst", out_dim, 1, rng)),
      norm_(norm),
      name_(name) {}

Tensor AttentionConv::Forward(const GraphContext& ctx,
                              const Tensor& x) const {
  Tensor xw = MatMul(x, weight_);  // [n, out_dim]
  // Per-node attention logits, then gathered per arc. The standard GATv1
  // decomposition a.[Wh_u || Wh_v] = a_src.Wh_u + a_dst.Wh_v.
  Tensor logit_src = MatMul(xw, att_src_);  // [n, 1]
  Tensor logit_dst = MatMul(xw, att_dst_);  // [n, 1]
  Tensor e = LeakyRelu(
      Add(GatherRows(logit_src, ctx.src), GatherRows(logit_dst, ctx.dst)),
      0.2f);
  const std::vector<uint32_t>& group =
      norm_ == AttentionNorm::kTarget ? ctx.dst : ctx.src;
  Tensor alpha = SegmentSoftmax(e, group, ctx.num_nodes);
  return WeightedScatterAddRows(alpha, xw, ctx.src, ctx.dst, ctx.num_nodes);
}

PlanValId AttentionConv::Lower(PlanBuilder& pb, const ParamStore& store,
                               const GraphContext& ctx, PlanValId x) const {
  const PlanValId w =
      pb.Param(store.OffsetOf(weight_), weight_.rows(), weight_.cols());
  const PlanValId xw = pb.MatMul(x, w);
  const PlanValId a_src =
      pb.Param(store.OffsetOf(att_src_), att_src_.rows(), 1);
  const PlanValId a_dst =
      pb.Param(store.OffsetOf(att_dst_), att_dst_.rows(), 1);
  const PlanValId logit_src = pb.MatMul(xw, a_src);
  const PlanValId logit_dst = pb.MatMul(xw, a_dst);
  const PlanValId e = pb.LeakyRelu(
      pb.Add(pb.GatherRows(logit_src, ctx.src),
             pb.GatherRows(logit_dst, ctx.dst)),
      0.2f);
  const std::vector<uint32_t>& group =
      norm_ == AttentionNorm::kTarget ? ctx.dst : ctx.src;
  const PlanValId alpha = pb.SegmentSoftmax(e, group, ctx.num_nodes);
  return pb.WeightedScatterAddRows(alpha, xw, ctx.src, ctx.dst,
                                   ctx.num_nodes);
}

}  // namespace privim
