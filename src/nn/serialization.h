#ifndef PRIVIM_NN_SERIALIZATION_H_
#define PRIVIM_NN_SERIALIZATION_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "nn/gnn.h"

namespace privim {

/// Model checkpointing. The format is a small self-describing text file:
/// a header with the GnnConfig, then one block per parameter tensor
/// (name, shape, row-major float values). Since a DP-trained model is the
/// *output* of the private mechanism, persisting and sharing it does not
/// consume additional privacy budget (post-processing).

/// Writes `model`'s configuration and parameters to `path`.
Status SaveModel(const GnnModel& model, const std::string& path);

/// Reads a configuration header written by SaveModel.
Result<GnnConfig> LoadModelConfig(const std::string& path);

/// Loads parameters from `path` into `model`. The model must have been
/// constructed with a configuration matching the checkpoint (same
/// backbone, dims, and layer count) — validated against the header and
/// per-tensor shapes.
Status LoadModelParams(const std::string& path, GnnModel& model);

/// One-call restore: reads the header, builds a model with the stored
/// configuration, and loads the parameters into it.
Result<std::unique_ptr<GnnModel>> LoadModel(const std::string& path);

}  // namespace privim

#endif  // PRIVIM_NN_SERIALIZATION_H_
