#ifndef PRIVIM_NN_LAYERS_H_
#define PRIVIM_NN_LAYERS_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "nn/graph_context.h"
#include "nn/param_store.h"
#include "tensor/plan.h"
#include "tensor/tensor.h"

namespace privim {

/// Base class for one message-passing layer (Appendix G of the paper).
/// Layers register their parameters in a shared ParamStore at construction
/// and are stateless afterwards: Forward() may be called on any
/// GraphContext (subgraphs during training, the full graph at inference).
class GnnLayer {
 public:
  virtual ~GnnLayer() = default;

  /// Applies the layer: x is [num_nodes, in_dim]; returns
  /// [num_nodes, out_dim] pre-activation (models apply the nonlinearity).
  virtual Tensor Forward(const GraphContext& ctx, const Tensor& x) const = 0;

  /// Records the same computation as Forward() into a PlanBuilder, with
  /// parameters bound by their flat offset in `store` (which must be the
  /// store the layer registered into). Returns the pre-activation value id.
  /// The compiled plan borrows `ctx`'s edge vectors and must not outlive
  /// them.
  virtual PlanValId Lower(PlanBuilder& pb, const ParamStore& store,
                          const GraphContext& ctx, PlanValId x) const = 0;

  virtual std::string name() const = 0;
};

/// GCN (Kipf & Welling): h_v' = W * sum_{u in N(v)} h_u / sqrt(d_v d_u),
/// with self-loops; symmetric normalization precomputed in GraphContext.
class GcnConv : public GnnLayer {
 public:
  GcnConv(size_t in_dim, size_t out_dim, ParamStore& store, Rng& rng,
          const std::string& name);
  Tensor Forward(const GraphContext& ctx, const Tensor& x) const override;
  PlanValId Lower(PlanBuilder& pb, const ParamStore& store,
                  const GraphContext& ctx, PlanValId x) const override;
  std::string name() const override { return name_; }

 private:
  Tensor weight_;
  Tensor bias_;
  std::string name_;
};

/// GraphSAGE (mean aggregator): h_v' = W [h_v || mean_{u in N(v)} h_u].
class SageConv : public GnnLayer {
 public:
  SageConv(size_t in_dim, size_t out_dim, ParamStore& store, Rng& rng,
           const std::string& name);
  Tensor Forward(const GraphContext& ctx, const Tensor& x) const override;
  PlanValId Lower(PlanBuilder& pb, const ParamStore& store,
                  const GraphContext& ctx, PlanValId x) const override;
  std::string name() const override { return name_; }

 private:
  Tensor weight_;  // [2*in_dim, out_dim]
  Tensor bias_;
  std::string name_;
};

/// GIN: h_v' = MLP( (1 + omega) h_v + sum_{u in N(v)} h_u ), two-layer MLP.
class GinConv : public GnnLayer {
 public:
  GinConv(size_t in_dim, size_t out_dim, ParamStore& store, Rng& rng,
          const std::string& name);
  Tensor Forward(const GraphContext& ctx, const Tensor& x) const override;
  PlanValId Lower(PlanBuilder& pb, const ParamStore& store,
                  const GraphContext& ctx, PlanValId x) const override;
  std::string name() const override { return name_; }

 private:
  Tensor w1_;  // [in_dim, out_dim]
  Tensor b1_;
  Tensor w2_;  // [out_dim, out_dim]
  Tensor b2_;
  Tensor omega_;  // [1,1], initialised to 0
  std::string name_;
};

/// Attention normalization direction for AttentionConv.
enum class AttentionNorm {
  /// GAT: softmax over each *target's* incoming arcs (Eq. 35).
  kTarget,
  /// GRAT: softmax over each *source's* outgoing arcs (Eq. 39) — reduces
  /// the reward for overlapping coverage, the paper's preferred model.
  kSource,
};

/// Single-head GAT/GRAT layer:
///   e_uv = LeakyReLU(a1 . Wh_u + a2 . Wh_v), alpha = segment-softmax(e),
///   h_v' = sum_u alpha_uv Wh_u.
class AttentionConv : public GnnLayer {
 public:
  AttentionConv(size_t in_dim, size_t out_dim, AttentionNorm norm,
                ParamStore& store, Rng& rng, const std::string& name);
  Tensor Forward(const GraphContext& ctx, const Tensor& x) const override;
  PlanValId Lower(PlanBuilder& pb, const ParamStore& store,
                  const GraphContext& ctx, PlanValId x) const override;
  std::string name() const override { return name_; }

 private:
  Tensor weight_;  // [in_dim, out_dim]
  Tensor att_src_;  // [out_dim, 1]
  Tensor att_dst_;  // [out_dim, 1]
  AttentionNorm norm_;
  std::string name_;
};

}  // namespace privim

#endif  // PRIVIM_NN_LAYERS_H_
