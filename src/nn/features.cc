#include "nn/features.h"

#include <algorithm>
#include <cmath>

namespace privim {

namespace {

// Absolute scales: features must mean the same thing on a 40-node training
// subgraph and on the full evaluation graph, so they are normalized by
// fixed constants rather than per-graph maxima.
constexpr double kLinearDegreeScale = 32.0;
// log1p(deg) saturates at deg = 1023.
const double kLogDegreeScale = std::log(1024.0);
// log1p(two-hop mass) saturates at 2^16.
const double kLogTwoHopScale = std::log(65536.0);

inline float Saturate(double v) {
  return static_cast<float>(std::min(1.0, std::max(0.0, v)));
}

}  // namespace

Matrix BuildNodeFeatures(const Graph& g) {
  const size_t n = g.num_nodes();
  Matrix x(n, kNodeFeatureDim);
  if (n == 0) return x;

  for (NodeId u = 0; u < n; ++u) {
    const double od = static_cast<double>(g.OutDegree(u));
    const double id = static_cast<double>(g.InDegree(u));
    double two_hop = 0.0;
    size_t reciprocal = 0;
    for (NodeId v : g.OutNeighbors(u)) {
      two_hop += static_cast<double>(g.OutDegree(v));
      if (g.HasEdge(v, u)) ++reciprocal;
    }
    x(u, 0) = 1.0f;
    x(u, 1) = Saturate(od / kLinearDegreeScale);
    x(u, 2) = Saturate(id / kLinearDegreeScale);
    x(u, 3) = Saturate(std::log1p(od) / kLogDegreeScale);
    x(u, 4) = Saturate(std::log1p(id) / kLogDegreeScale);
    x(u, 5) = Saturate(std::log1p(two_hop) / kLogTwoHopScale);
    x(u, 6) = od > 0 ? static_cast<float>(reciprocal / od) : 0.0f;
    x(u, 7) = static_cast<float>(1.0 / (1.0 + od));
  }
  return x;
}

}  // namespace privim
