#include "nn/param_store.h"

#include <cmath>

#include "common/logging.h"

namespace privim {

Tensor ParamStore::NewGlorot(const std::string& name, size_t rows,
                             size_t cols, Rng& rng, size_t fan_in,
                             size_t fan_out) {
  if (fan_in == 0) fan_in = rows;
  if (fan_out == 0) fan_out = cols;
  const double bound =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-bound, bound));
  }
  Tensor t(std::move(m), /*requires_grad=*/true);
  params_.push_back(t);
  names_.push_back(name);
  num_scalars_ += rows * cols;
  return t;
}

Tensor ParamStore::NewConstant(const std::string& name, size_t rows,
                               size_t cols, float value) {
  Tensor t(Matrix(rows, cols, value), /*requires_grad=*/true);
  params_.push_back(t);
  names_.push_back(name);
  num_scalars_ += rows * cols;
  return t;
}

size_t ParamStore::OffsetOf(const Tensor& t) const {
  size_t pos = 0;
  for (const Tensor& p : params_) {
    if (TensorOpBuilder::node(p) == TensorOpBuilder::node(t)) return pos;
    pos += p.value().size();
  }
  PRIVIM_CHECK(false) << "tensor is not a parameter of this store";
  return 0;
}

void ParamStore::ZeroGrads() {
  for (Tensor& p : params_) p.ZeroGrad();
}

void ParamStore::FlattenGrads(std::span<float> out) const {
  PRIVIM_CHECK_EQ(out.size(), num_scalars_);
  size_t pos = 0;
  for (const Tensor& p : params_) {
    const Matrix& g = p.grad();
    std::copy(g.data(), g.data() + g.size(), out.data() + pos);
    pos += g.size();
  }
}

void ParamStore::FlattenParams(std::span<float> out) const {
  PRIVIM_CHECK_EQ(out.size(), num_scalars_);
  size_t pos = 0;
  for (const Tensor& p : params_) {
    const Matrix& v = p.value();
    std::copy(v.data(), v.data() + v.size(), out.data() + pos);
    pos += v.size();
  }
}

void ParamStore::LoadParams(std::span<const float> in) {
  PRIVIM_CHECK_EQ(in.size(), num_scalars_);
  size_t pos = 0;
  for (Tensor& p : params_) {
    Matrix& v = p.mutable_value();
    std::copy(in.data() + pos, in.data() + pos + v.size(), v.data());
    pos += v.size();
  }
}

void ParamStore::ApplyUpdate(std::span<const float> delta, float step) {
  PRIVIM_CHECK_EQ(delta.size(), num_scalars_);
  size_t pos = 0;
  for (Tensor& p : params_) {
    Matrix& v = p.mutable_value();
    for (size_t i = 0; i < v.size(); ++i) {
      v.data()[i] -= step * delta[pos + i];
    }
    pos += v.size();
  }
}

}  // namespace privim
