#ifndef PRIVIM_NN_GRAPH_CONTEXT_H_
#define PRIVIM_NN_GRAPH_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace privim {

/// Edge-list view of a (sub)graph preprocessed for message passing.
///
/// Built once per graph and shared by all layers/epochs. Contains the raw
/// arcs plus self-loops (GNNs conventionally let each node attend to itself)
/// and the constant aggregation coefficients each layer family needs.
struct GraphContext {
  size_t num_nodes = 0;

  /// Arcs including one self-loop per node, ordered arbitrarily.
  /// src[e] -> dst[e] with IC weight weight[e] (self-loops weight 1).
  std::vector<uint32_t> src;
  std::vector<uint32_t> dst;
  std::vector<float> weight;

  /// Symmetric-normalized coefficients 1/sqrt((d_dst+1)(d_src+1)) per arc
  /// (GCN, Eq. 31 with self-loops).
  std::vector<float> gcn_coef;

  /// Mean-aggregation coefficients 1/(in_degree(dst)+1) per arc (GraphSAGE).
  std::vector<float> mean_coef;

  /// Plain sum coefficients: 1 for real arcs, 0 for self-loops (GIN's
  /// neighbor sum excludes the center, which enters via (1+omega)h_v).
  std::vector<float> sum_coef;

  /// weight[e] for real arcs, 0 for self-loops: IC-weighted aggregation used
  /// by the influence-probability head (Theorem 2: sum_v w_vu h_v).
  std::vector<float> ic_coef;

  /// True for entries that are self-loops.
  std::vector<uint8_t> is_self_loop;
};

/// Builds a GraphContext from a graph (typically a Subgraph::local or a full
/// evaluation graph).
GraphContext BuildGraphContext(const Graph& g);

}  // namespace privim

#endif  // PRIVIM_NN_GRAPH_CONTEXT_H_
