#include "core/indicator.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace privim {

double BetaN(size_t num_nodes, const IndicatorParams& params) {
  PRIVIM_CHECK_GE(num_nodes, 2u);
  return params.k_n * std::log(static_cast<double>(num_nodes)) + params.b_n;
}

double BetaM(size_t num_nodes, const IndicatorParams& params) {
  PRIVIM_CHECK_GE(num_nodes, 2u);
  return params.k_m / std::log(static_cast<double>(num_nodes)) + params.b_m;
}

double IndicatorRaw(double n, double m, size_t num_nodes,
                    const IndicatorParams& params) {
  const double beta_n = std::max(BetaN(num_nodes, params), 1e-3);
  const double beta_m = std::max(BetaM(num_nodes, params), 1e-3);
  return GammaPdf(n, beta_n, params.psi_n) +
         GammaPdf(m, beta_m, params.psi_m);
}

std::vector<std::vector<double>> IndicatorSurface(
    const std::vector<double>& n_grid, const std::vector<double>& m_grid,
    size_t num_nodes, const IndicatorParams& params) {
  std::vector<std::vector<double>> surface(
      n_grid.size(), std::vector<double>(m_grid.size(), 0.0));
  double max_val = 0.0;
  for (size_t i = 0; i < n_grid.size(); ++i) {
    for (size_t j = 0; j < m_grid.size(); ++j) {
      surface[i][j] = IndicatorRaw(n_grid[i], m_grid[j], num_nodes, params);
      max_val = std::max(max_val, surface[i][j]);
    }
  }
  if (max_val > 0.0) {
    for (auto& row : surface) {
      for (double& v : row) v /= max_val;
    }
  }
  return surface;
}

IndicatorPeak FindIndicatorPeak(const std::vector<double>& n_grid,
                                const std::vector<double>& m_grid,
                                size_t num_nodes,
                                const IndicatorParams& params) {
  IndicatorPeak peak;
  const auto surface = IndicatorSurface(n_grid, m_grid, num_nodes, params);
  for (size_t i = 0; i < n_grid.size(); ++i) {
    for (size_t j = 0; j < m_grid.size(); ++j) {
      if (surface[i][j] > peak.value) {
        peak.value = surface[i][j];
        peak.n = n_grid[i];
        peak.m = m_grid[j];
      }
    }
  }
  return peak;
}

namespace {

Status ValidateObservations(
    const std::vector<IndicatorObservation>& observations) {
  if (observations.size() < 2) {
    return Status::InvalidArgument("need at least 2 observations to fit");
  }
  for (const auto& obs : observations) {
    if (obs.num_nodes < 3) {
      return Status::InvalidArgument("observations need |V| >= 3");
    }
  }
  return Status::OK();
}

}  // namespace

Result<IndicatorParams> FitIndicatorN(
    const std::vector<IndicatorObservation>& observations, double psi_n,
    IndicatorParams base) {
  PRIVIM_RETURN_NOT_OK(ValidateObservations(observations));
  if (psi_n <= 0.0) return Status::InvalidArgument("psi_n must be positive");
  // Gamma mode: n* = (beta_n - 1) psi_n  =>  n*/psi_n + 1 = k ln|V| + b.
  std::vector<double> xs, ys;
  for (const auto& obs : observations) {
    xs.push_back(std::log(static_cast<double>(obs.num_nodes)));
    ys.push_back(obs.optimal_value / psi_n + 1.0);
  }
  const LinearFit fit = LeastSquares(xs, ys);
  base.psi_n = psi_n;
  base.k_n = fit.k;
  base.b_n = fit.b;
  return base;
}

Result<IndicatorParams> FitIndicatorM(
    const std::vector<IndicatorObservation>& observations, double psi_m,
    IndicatorParams base) {
  PRIVIM_RETURN_NOT_OK(ValidateObservations(observations));
  if (psi_m <= 0.0) return Status::InvalidArgument("psi_m must be positive");
  // M* = (beta_M - 1) psi_M with beta_M = k_M / ln|V| + b_M.
  std::vector<double> xs, ys;
  for (const auto& obs : observations) {
    xs.push_back(1.0 / std::log(static_cast<double>(obs.num_nodes)));
    ys.push_back(obs.optimal_value / psi_m + 1.0);
  }
  const LinearFit fit = LeastSquares(xs, ys);
  base.psi_m = psi_m;
  base.k_m = fit.k;
  base.b_m = fit.b;
  return base;
}

}  // namespace privim
