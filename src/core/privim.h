#ifndef PRIVIM_CORE_PRIVIM_H_
#define PRIVIM_CORE_PRIVIM_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "dp/privacy_params.h"
#include "graph/graph.h"
#include "im/seed_selection.h"
#include "nn/gnn.h"
#include "runtime/runtime.h"
#include "sampling/baseline_samplers.h"
#include "sampling/freq_sampler.h"
#include "sampling/rwr_sampler.h"

namespace privim {

/// The competitors evaluated in Section V.
enum class Method {
  kPrivIm,      // Naive framework (Section III): theta-projection + RWR.
  kPrivImScs,   // Stage 1 only (Table II's "PrivIM+SCS").
  kPrivImStar,  // Dual-stage sampling (Section IV).
  kEgn,         // Erdos-Goes-Neural + DP-SGD, random subgraphs.
  kHp,          // HeterPoisson ego-sampling + SML noise, GCN backbone.
  kHpGrat,      // HP with the GRAT backbone.
  kNonPrivate,  // PrivIM* with epsilon = infinity (no noise, no clipping).
};

std::string MethodName(Method method);
Result<Method> ParseMethod(const std::string& name);

/// Full configuration of one PrivIM-framework run.
struct PrivImConfig {
  Method method = Method::kPrivImStar;
  PrivacyBudget budget;  // Ignored by kNonPrivate.
  GnnConfig gnn;         // Backbone; kEgn/kHp override the type to GCN.

  /// Naive pipeline (Algorithm 1): max in-degree theta and RWR parameters.
  size_t theta = 10;
  RwrConfig rwr;

  /// Dual-stage pipeline (Algorithm 3).
  FreqSamplingConfig freq;

  /// EGN / HP samplers.
  size_t egn_subgraph_count = 256;
  EgoSamplingConfig ego;

  TrainConfig train;

  /// Worker parallelism applied across the pipeline (sampling, per-sample
  /// gradients, Monte-Carlo evaluation). `num_threads` = 0 defers to the
  /// global runtime default (PRIVIM_THREADS or serial); every stage is
  /// bit-identical for every thread count, so this is a pure efficiency
  /// knob — see docs/runtime.md.
  RuntimeOptions runtime;

  /// Calibrate the clip bound C to the typical per-subgraph gradient norm
  /// (measured on a throwaway model over a few noiseless iterations)
  /// instead of using train.clip_bound verbatim. Keeps the noise scale
  /// sigma * C * N_g proportional to the actual signal on every dataset.
  /// Treated as hyper-parameter tuning (like the paper's grid searches).
  bool auto_clip = true;
  /// C = auto_clip_scale * median post-warmup gradient norm. Values < 1
  /// clip aggressively, which normalizes per-sample contributions and is
  /// empirically more noise-robust.
  double auto_clip_scale = 0.5;

  /// Seed budget k and the diffusion-step count j used at evaluation.
  size_t seed_count = 50;
  int eval_steps = 1;

  /// Diffusion model used to score the final seed set. The paper's
  /// evaluation uses the exact unit-weight IC spread; LT and SIS implement
  /// its future-work extensions, and Monte-Carlo IC handles fractional
  /// edge weights.
  enum class EvalDiffusion { kExactIc, kMonteCarloIc, kLt, kSis };
  EvalDiffusion eval_diffusion = EvalDiffusion::kExactIc;
  /// Monte-Carlo trials per oracle evaluation (kMonteCarloIc/kLt/kSis).
  size_t eval_trials = 64;
  /// SIS recovery probability (kSis only).
  double sis_recovery = 0.3;

  /// Checkpoint/resume policy (src/ckpt/). When `checkpoint.dir` is set,
  /// RunMethod commits a pipeline snapshot at every stage boundary and a
  /// trainer snapshot every `checkpoint.train_every` iterations; with
  /// `checkpoint.resume` it continues from the latest snapshot instead of
  /// recomputing, with bit-identical results (docs/api.md).
  CheckpointOptions checkpoint;

  /// Validates every stage's parameters in one pass, returning the first
  /// violation as InvalidArgument with a field-path message (e.g.
  /// "train.batch_size must be >= 1, got 0"). RunMethod and EvaluateMethod
  /// call this before touching any graph, so a bad configuration fails
  /// fast instead of deep inside a sampler or the trainer.
  Status Validate() const;
};

/// Stable token for an evaluation diffusion model ("exact" / "mc" / "lt" /
/// "sis"); round-trips through ParseEvalDiffusion. Mirrors
/// MethodName/ParseMethod.
std::string EvalDiffusionName(PrivImConfig::EvalDiffusion diffusion);
Result<PrivImConfig::EvalDiffusion> ParseEvalDiffusion(
    const std::string& name);

/// Outcome of one run: the private seed set plus telemetry for the paper's
/// efficiency and accounting tables.
struct PrivImRunResult {
  std::vector<NodeId> seeds;
  /// GNN logit of each selected seed, aligned with `seeds`. DP
  /// post-processing of the trained model, so releasing it costs no
  /// additional budget; the sharded merger ranks across shards by it
  /// (src/shard/shard_merger.h).
  std::vector<double> seed_scores;
  /// Influence spread of `seeds` on the evaluation graph (exact unit-weight
  /// j-step spread, the paper's setting).
  double spread = 0.0;
  /// Occurrence bound N_g used by the accountant.
  size_t occurrence_bound = 0;
  /// Container size m and stage split.
  size_t container_size = 0;
  size_t stage1_count = 0;
  size_t stage2_count = 0;
  /// Noise multiplier sigma and resulting noise stddev sigma * Delta_g.
  double sigma = 0.0;
  double noise_stddev = 0.0;
  /// Clip bound C actually used (after auto-calibration).
  double clip_bound_used = 0.0;
  /// Accountant's epsilon for the executed run (<= budget.epsilon).
  double epsilon_spent = 0.0;
  /// Cumulative epsilon after each training iteration (empty on
  /// non-private runs). The sharded runner composes these ledgers across
  /// node-disjoint shards by entrywise max (parallel composition,
  /// docs/sharding.md).
  std::vector<double> epsilon_ledger;
  /// Audited maximum occurrence across the container (must be <=
  /// occurrence_bound; checked).
  size_t audited_max_occurrence = 0;
  /// Timings for Table III.
  double preprocessing_seconds = 0.0;
  double per_epoch_seconds = 0.0;
  /// Mean training loss of the final quarter of iterations (diagnostic).
  double final_loss = 0.0;
};

/// Runs one method end to end:
///   1. extracts the subgraph container from `train_graph` per the method,
///   2. derives the occurrence bound and calibrates sigma for the budget,
///   3. trains the GNN with Algorithm 2,
///   4. scores `eval_graph`, picks the top-k seeds among all its nodes, and
///      evaluates the exact unit-weight spread.
///
/// `train_graph` and `eval_graph` are typically the node-split induced
/// halves of a dataset (the paper's 50/50 protocol).
///
/// If `model_out` is non-null it receives the trained model (the DP
/// mechanism's output — exporting it is privacy-free post-processing).
///
/// If `telemetry` is non-null the run fills it with per-iteration training
/// records (including the accountant's cumulative-epsilon ledger on private
/// runs), sampler walk counters, oracle-call counts, and a runtime-pool
/// usage delta scoped to this run. Recording is pure observation: results
/// are bit-identical with telemetry on or off, for every thread count.
Result<PrivImRunResult> RunMethod(const Graph& train_graph,
                                  const Graph& eval_graph,
                                  const PrivImConfig& config, Rng& rng,
                                  std::unique_ptr<GnnModel>* model_out =
                                      nullptr,
                                  RunTelemetry* telemetry = nullptr);

/// Builds the spread oracle `cfg.eval_diffusion` selects over `g` — the
/// oracle RunMethod scores its final seed set with. Exposed so the sharded
/// merger (src/shard/) evaluates the merged seed set with exactly the
/// oracle the per-shard runs used. `rng` is consumed only by the
/// Monte-Carlo variants (each oracle forks its own stream from it).
Result<SpreadOracle> MakeEvalOracle(const Graph& g, const PrivImConfig& cfg,
                                    Rng& rng,
                                    MetricsRegistry* metrics = nullptr);

/// Builds the paper's default configuration for a method on a graph with
/// `train_nodes` training nodes: q = 256/|V_train|, L = 200, theta = 10,
/// tau = 0.3, three-layer 32-unit backbone (GRAT for PrivIM variants, GCN
/// for EGN/HP), k = 50, j = 1.
PrivImConfig MakeDefaultConfig(Method method, double epsilon,
                               size_t train_nodes);

/// Sets `config`'s subgraph size n and frequency threshold M to the peak
/// of the Gamma indicator (Section IV-C) for a dataset with
/// `dataset_nodes` nodes — the paper's budget-free parameter selection.
/// Grids: n in {10..80 step 10}, M in {2..12 step 2}. The indicator was
/// fitted on paper-scale |V|, so pass the unscaled dataset size.
void AutoTuneSamplingParams(size_t dataset_nodes, PrivImConfig& config);

}  // namespace privim

#endif  // PRIVIM_CORE_PRIVIM_H_
