#include "core/driver_options.h"

#include <cstdlib>

#include "common/string_util.h"

namespace privim {

namespace {

Result<std::string> FlagValue(int argc, char** argv, int& i,
                              const std::string& flag) {
  if (i + 1 >= argc) {
    return Status::InvalidArgument(
        StrFormat("%s requires a value", flag.c_str()));
  }
  return std::string(argv[++i]);
}

}  // namespace

Result<bool> DriverOptions::TryParse(int argc, char** argv, int& i,
                                     const Features& features) {
  const std::string arg = argv[i];
  if (arg == "--threads") {
    PRIVIM_ASSIGN_OR_RETURN(std::string v, FlagValue(argc, argv, i, arg));
    threads = static_cast<size_t>(std::atoll(v.c_str()));
    return true;
  }
  if (arg == "--seed") {
    PRIVIM_ASSIGN_OR_RETURN(std::string v, FlagValue(argc, argv, i, arg));
    seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    return true;
  }
  if (arg == "--telemetry") {
    PRIVIM_ASSIGN_OR_RETURN(telemetry_path, FlagValue(argc, argv, i, arg));
    return true;
  }
  if (arg.rfind("--telemetry=", 0) == 0) {
    telemetry_path = arg.substr(std::string("--telemetry=").size());
    if (telemetry_path.empty()) {
      return Status::InvalidArgument("--telemetry requires a path");
    }
    return true;
  }
  if (arg == "--checkpoint-dir") {
    if (!features.checkpoint) {
      return Status::InvalidArgument(
          "--checkpoint-dir is not supported by this driver (no "
          "checkpointable pipeline)");
    }
    PRIVIM_ASSIGN_OR_RETURN(checkpoint_dir, FlagValue(argc, argv, i, arg));
    return true;
  }
  if (arg == "--resume") {
    if (!features.checkpoint) {
      return Status::InvalidArgument(
          "--resume is not supported by this driver (no checkpointable "
          "pipeline)");
    }
    resume = true;
    return true;
  }
  return false;
}

Status DriverOptions::Validate(const Features& features) const {
  if (features.checkpoint && resume && checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint-dir");
  }
  return Status::OK();
}

std::string DriverOptions::UsageText(const Features& features) {
  std::string text =
      "  --threads N        worker threads (0 = PRIVIM_THREADS or 1)  [0]\n"
      "  --seed N           master random seed                        [42]\n"
      "  --telemetry PATH   write run telemetry JSON\n";
  if (features.checkpoint) {
    text +=
        "  --checkpoint-dir PATH\n"
        "                     commit resumable snapshots to PATH\n"
        "  --resume           continue from the snapshots in "
        "--checkpoint-dir\n";
  }
  return text;
}

std::vector<std::string> DriverOptions::ToArgs(
    const Features& features) const {
  std::vector<std::string> args;
  if (threads != 0) {
    args.push_back("--threads");
    args.push_back(std::to_string(threads));
  }
  if (seed != 42) {
    args.push_back("--seed");
    args.push_back(std::to_string(seed));
  }
  if (!telemetry_path.empty()) {
    args.push_back("--telemetry");
    args.push_back(telemetry_path);
  }
  if (features.checkpoint && !checkpoint_dir.empty()) {
    args.push_back("--checkpoint-dir");
    args.push_back(checkpoint_dir);
  }
  if (features.checkpoint && resume) args.push_back("--resume");
  return args;
}

}  // namespace privim
