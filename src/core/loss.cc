#include "core/loss.h"

#include "tensor/ops.h"

namespace privim {

Tensor ImPenaltyLoss(const GraphContext& ctx, const Tensor& seed_probs,
                     const ImLossConfig& config) {
  PRIVIM_CHECK_EQ(seed_probs.rows(), ctx.num_nodes);
  PRIVIM_CHECK_EQ(seed_probs.cols(), 1u);
  PRIVIM_CHECK_GE(config.diffusion_steps, 1);

  // survival_u = prod_i (1 - p_hat_i(u)), built step by step.
  Tensor h = seed_probs;  // h^(0) = x.
  Tensor survival;        // Starts undefined; first factor assigns it.
  for (int step = 0; step < config.diffusion_steps; ++step) {
    // z_u = sum_{v in N(u)} w_vu h_v — aggregation over in-edges, which in
    // the edge list means scattering source values into targets with the IC
    // weights (self-loop coefficient is 0 in ic_coef).
    Tensor z = ScatterAddRows(h, ctx.src, ctx.dst, ctx.ic_coef,
                              ctx.num_nodes);
    Tensor p = InfluenceProb(z);  // p_hat_step in [0,1).
    // (1 - p).
    Tensor one_minus_p = AddScalar(Scale(p, -1.0f), 1.0f);
    survival = step == 0 ? one_minus_p : Mul(survival, one_minus_p);
    h = p;  // H^(i): newly influenced mass drives the next step.
  }

  Tensor uninfluenced = MeanAll(survival);
  Tensor seed_mass = MeanAll(seed_probs);
  return Add(uninfluenced, Scale(seed_mass, config.lambda));
}

PlanValId LowerImPenaltyLoss(PlanBuilder& pb, const GraphContext& ctx,
                             PlanValId seed_probs,
                             const ImLossConfig& config) {
  PRIVIM_CHECK_GE(config.diffusion_steps, 1);

  // Same op sequence as ImPenaltyLoss above, over plan value ids.
  PlanValId h = seed_probs;
  PlanValId survival = -1;
  for (int step = 0; step < config.diffusion_steps; ++step) {
    const PlanValId z =
        pb.ScatterAddRows(h, ctx.src, ctx.dst, ctx.ic_coef, ctx.num_nodes);
    const PlanValId p = pb.InfluenceProb(z);
    const PlanValId one_minus_p = pb.AddScalar(pb.Scale(p, -1.0f), 1.0f);
    survival = step == 0 ? one_minus_p : pb.Mul(survival, one_minus_p);
    h = p;
  }

  const PlanValId uninfluenced = pb.MeanAll(survival);
  const PlanValId seed_mass = pb.MeanAll(seed_probs);
  return pb.Add(uninfluenced, pb.Scale(seed_mass, config.lambda));
}

}  // namespace privim
