#ifndef PRIVIM_CORE_DRIVER_OPTIONS_H_
#define PRIVIM_CORE_DRIVER_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace privim {

/// The flags every privim driver shares (privim_cli, privim_serve,
/// privim_shard), parsed by one implementation so spellings, defaults,
/// and validation never drift between binaries (docs/api.md):
///
///   --threads N           worker parallelism (0 = PRIVIM_THREADS or 1)
///   --seed N              master random seed
///   --telemetry PATH      write run telemetry JSON (also --telemetry=PATH)
///   --checkpoint-dir PATH snapshot directory (drivers with checkpointing)
///   --resume              continue from --checkpoint-dir's snapshots
struct DriverOptions {
  size_t threads = 0;
  uint64_t seed = 42;
  std::string telemetry_path;
  std::string checkpoint_dir;
  bool resume = false;

  /// Which of the shared flags a driver supports. privim_serve has no
  /// checkpointable pipeline, so it builds with checkpoint = false and
  /// the parser rejects --checkpoint-dir/--resume with an error naming
  /// the restriction instead of silently ignoring them.
  struct Features {
    bool checkpoint = true;
  };

  /// Attempts to consume argv[i] (and its value argument, if any) as a
  /// shared flag. Returns true and advances `i` past the consumed
  /// arguments on success; returns false (leaving `i` untouched) when
  /// argv[i] is not a shared flag, so the driver's own parser handles it;
  /// returns InvalidArgument on a malformed or unsupported shared flag.
  /// The overloads without `features` use the defaults (all enabled).
  Result<bool> TryParse(int argc, char** argv, int& i,
                        const Features& features);
  Result<bool> TryParse(int argc, char** argv, int& i) {
    return TryParse(argc, argv, i, Features{});
  }

  /// Cross-flag validation, called once after the full command line is
  /// parsed: --resume requires --checkpoint-dir.
  Status Validate(const Features& features) const;
  Status Validate() const { return Validate(Features{}); }

  /// Usage text for the shared flags, formatted like the drivers' own
  /// blocks (two-space indent), listing only the flags `features` enables.
  static std::string UsageText(const Features& features);
  static std::string UsageText() { return UsageText(Features{}); }

  /// Renders the options back into argv form (round-trips through
  /// TryParse; tested). Flags at default values are omitted.
  std::vector<std::string> ToArgs(const Features& features) const;
  std::vector<std::string> ToArgs() const { return ToArgs(Features{}); }
};

}  // namespace privim

#endif  // PRIVIM_CORE_DRIVER_OPTIONS_H_
