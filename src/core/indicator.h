#ifndef PRIVIM_CORE_INDICATOR_H_
#define PRIVIM_CORE_INDICATOR_H_

#include <vector>

#include "common/result.h"

namespace privim {

/// Parameters of the Gamma-pdf parameter-selection indicator
/// (Section IV-C, Eq. 10-12). Defaults are the paper's fitted values.
struct IndicatorParams {
  double psi_n = 25.0;  // Scale for the subgraph-size component.
  double psi_m = 5.0;   // Scale for the frequency-threshold component.
  double k_n = 0.47;    // beta_n = k_n * ln|V| + b_n          (Eq. 12)
  double b_n = -1.03;
  double k_m = 4.02;    // beta_M = k_M / ln|V| + b_M          (Eq. 12)
  double b_m = 1.22;
};

/// Gamma shape parameters for a dataset of |V| = num_nodes (Eq. 12).
double BetaN(size_t num_nodes, const IndicatorParams& params);
double BetaM(size_t num_nodes, const IndicatorParams& params);

/// Unnormalized indicator xi(n) + xi(M) (Eq. 10's numerator, using the
/// Gamma pdfs of Eq. 11).
double IndicatorRaw(double n, double m, size_t num_nodes,
                    const IndicatorParams& params);

/// The normalized indicator surface I(n, M) over a grid: entry [i][j] is
/// I(n_grid[i], m_grid[j]), normalized so the maximum over the grid is 1
/// (Eq. 10's denominator is the maximum over the evaluated value space).
std::vector<std::vector<double>> IndicatorSurface(
    const std::vector<double>& n_grid, const std::vector<double>& m_grid,
    size_t num_nodes, const IndicatorParams& params);

/// The (n, M) maximizing the indicator over the grid.
struct IndicatorPeak {
  double n = 0.0;
  double m = 0.0;
  double value = 0.0;
};
IndicatorPeak FindIndicatorPeak(const std::vector<double>& n_grid,
                                const std::vector<double>& m_grid,
                                size_t num_nodes,
                                const IndicatorParams& params);

/// One calibration observation: on a dataset with `num_nodes` nodes, the
/// empirically best parameter value was `optimal_value` (n or M).
struct IndicatorObservation {
  size_t num_nodes;
  double optimal_value;
};

/// Fits (k_n, b_n) from observed optimal subgraph sizes via least squares
/// on the Gamma-mode identity n* = (beta_n - 1) psi_n with
/// beta_n = k_n ln|V| + b_n (Appendix H, Eq. 46-49). Needs >= 2
/// observations with distinct |V|.
Result<IndicatorParams> FitIndicatorN(
    const std::vector<IndicatorObservation>& observations, double psi_n,
    IndicatorParams base = IndicatorParams());

/// Fits (k_M, b_M) from observed optimal thresholds; the regressor is
/// 1/ln|V| per Eq. 12 (Appendix H's Eq. 50 writes the regressor as
/// ln(1/|V|); we follow Eq. 12's functional form, which is the one the
/// indicator actually evaluates).
Result<IndicatorParams> FitIndicatorM(
    const std::vector<IndicatorObservation>& observations, double psi_m,
    IndicatorParams base = IndicatorParams());

}  // namespace privim

#endif  // PRIVIM_CORE_INDICATOR_H_
