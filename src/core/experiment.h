#ifndef PRIVIM_CORE_EXPERIMENT_H_
#define PRIVIM_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/privim.h"
#include "graph/datasets.h"

namespace privim {

/// Shared experiment plumbing for the benchmark harness (one binary per
/// paper table/figure) and the examples.

/// A fully prepared dataset instance: the synthesized graph, its 50/50 node
/// split, the induced train/eval halves, and the CELF reference spread on
/// the evaluation half.
struct DatasetInstance {
  DatasetSpec spec;
  Graph full;
  Graph train_graph;  // Induced on the train split.
  Graph eval_graph;   // Induced on the test split.
  /// CELF's spread on eval_graph (ground truth; Section V-A's |V_CELF|),
  /// with k = seed_count and exact unit-weight j-step evaluation.
  double celf_spread = 0.0;
  std::vector<NodeId> celf_seeds;
};

/// Synthesizes dataset `id`, splits it, and computes the CELF reference.
/// `scale` forwards to MakeDataset; `seed` controls all randomness.
Result<DatasetInstance> PrepareDataset(DatasetId id, uint64_t seed,
                                       size_t seed_count = 50,
                                       int eval_steps = 1,
                                       double scale = 1.0);

/// Aggregated outcome of `repeats` runs of one method configuration.
struct MethodEval {
  Method method;
  double mean_spread = 0.0;
  double std_spread = 0.0;
  /// Coverage ratio vs CELF in percent (mean/std over repeats).
  double mean_coverage = 0.0;
  double std_coverage = 0.0;
  double mean_preprocessing_seconds = 0.0;
  double mean_per_epoch_seconds = 0.0;
  /// Median-of-repeats timings (all on the monotonic clock): what the
  /// timing benches report, since one scheduling hiccup shifts a mean but
  /// not a median.
  double median_preprocessing_seconds = 0.0;
  double median_per_epoch_seconds = 0.0;
  /// Telemetry of the last run.
  PrivImRunResult last_run;
};

/// Runs `config` `repeats` times with seeds derived from `seed` and
/// aggregates spread/coverage against the instance's CELF reference.
/// A non-null `telemetry` accumulates records across every repeat (one
/// RunMethod fill per repeat; counters sum, train records append).
Result<MethodEval> EvaluateMethod(const DatasetInstance& instance,
                                  const PrivImConfig& config, size_t repeats,
                                  uint64_t seed,
                                  RunTelemetry* telemetry = nullptr);

/// Number of experiment repeats: PRIVIM_REPEATS env var, default
/// `fallback` (the paper uses 5; benches default to 1 for runtime).
size_t RepeatsFromEnv(size_t fallback = 1);

/// Dataset scale multiplier: PRIVIM_SCALE env var, default 1.0.
double ScaleFromEnv();

/// Prints the standard bench preamble (dataset table with paper vs
/// simulated sizes and the scale disclaimer). `repeats` is the repeat
/// count the bench actually uses.
void PrintBenchHeader(const std::string& title, size_t repeats);

}  // namespace privim

#endif  // PRIVIM_CORE_EXPERIMENT_H_
