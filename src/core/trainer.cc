#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "ckpt/failpoint.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/plan_cache.h"
#include "dp/mechanisms.h"
#include "nn/optimizer.h"
#include "runtime/parallel_for.h"
#include "runtime/runtime.h"

namespace privim {

namespace {

/// Per-sample gradient state filled by the workers and reduced in index
/// order by the main thread.
struct SampleSlot {
  std::vector<float> grad;
  double loss = 0.0;
  double pre_clip_norm = 0.0;
};

}  // namespace

Result<TrainStats> TrainDpGnn(GnnModel& model,
                              const SubgraphContainer& container,
                              const TrainConfig& config, Rng& rng) {
  if (container.empty()) {
    return Status::FailedPrecondition("subgraph container is empty");
  }
  if (config.batch_size == 0 || config.iterations == 0) {
    return Status::InvalidArgument("batch size and iterations must be > 0");
  }
  if (config.clip_bound < 0.0) {
    return Status::InvalidArgument("clip bound must be non-negative");
  }
  if (config.clip_bound == 0.0 && config.noise_kind != NoiseKind::kNone) {
    return Status::InvalidArgument(
        "clipping may only be disabled for noiseless training");
  }

  // Derived per-subgraph state (message-passing context, structural
  // features, compiled plan) is built lazily on first touch and reused
  // across iterations — only the subgraphs a batch actually draws pay the
  // build cost.
  const size_t m = container.size();
  SubgraphPlanCache cache(model, container, config.loss,
                          config.use_compiled_plan,
                          config.plan_optimize ? PlanOptions::Native()
                                               : PlanOptions::Reference());

  const size_t dim = model.params().num_scalars();
  std::vector<float> batch_sum(dim);
  std::unique_ptr<Optimizer> optimizer;
  if (config.optimizer == OptimizerKind::kAdam) {
    optimizer = std::make_unique<AdamOptimizer>(config.learning_rate);
  } else {
    optimizer = std::make_unique<SgdOptimizer>(config.learning_rate);
  }

  // Parallel setup. On the plan path the compiled plans are shared,
  // stateless programs: parameters are bound per iteration as a read-only
  // flat snapshot and every worker slot owns a PlanArena, so no model
  // replicas are needed at any thread count. On the tape path, per-sample
  // gradients are computed on model replicas (one per concurrent task)
  // because forward/backward accumulates into the owning ParamStore.
  // Either way the gradient of a subgraph is a deterministic function of
  // (parameters, subgraph) alone — no RNG — so which worker computes it
  // cannot change a single bit. The serial tape path (threads == 1) runs
  // on the main model directly.
  const size_t threads = std::max<size_t>(
      1, std::min(ResolveNumThreads(config.num_threads), config.batch_size));
  ThreadPool* pool = SharedPool(threads);
  std::vector<std::unique_ptr<GnnModel>> replicas;
  std::vector<float> param_snapshot;
  std::vector<PlanArena> arenas;
  if (config.use_compiled_plan) {
    arenas.resize(threads);
    param_snapshot.resize(dim);
  } else if (pool != nullptr) {
    replicas.reserve(threads);
    for (size_t r = 0; r < threads; ++r) {
      // Init randomness is discarded by LoadParams below; a fixed local
      // seed keeps the caller's stream untouched.
      Rng replica_rng(0x5eedu + r);
      replicas.push_back(
          std::make_unique<GnnModel>(model.config(), replica_rng));
      if (replicas.back()->params().num_scalars() != dim) {
        return Status::Internal("replica parameter layout mismatch");
      }
    }
    param_snapshot.resize(dim);
  }

  std::vector<SampleSlot> samples(config.batch_size);
  for (SampleSlot& s : samples) s.grad.resize(dim);
  std::vector<size_t> batch_indices(config.batch_size);
  std::vector<const CompiledSubgraph*> batch_entries(config.batch_size);

  // Polyak tail averaging state: accumulate iterates over the last
  // quarter of the run.
  const size_t tail_start =
      config.tail_averaging ? config.iterations - (config.iterations + 3) / 4
                            : config.iterations;
  std::vector<double> tail_sum(config.tail_averaging ? dim : 0, 0.0);
  size_t tail_count = 0;
  std::vector<float> snapshot(config.tail_averaging ? dim : 0);

  TrainStats stats;
  stats.losses.reserve(config.iterations);
  stats.grad_norms.reserve(config.iterations);
  double norm_accum = 0.0;
  size_t norm_count = 0;

  // Mid-training resume: restore every piece of loop state bit-exactly and
  // continue from the saved iteration as if the interruption never
  // happened. The RNG state carries the caller's stream position (so the
  // batch draws and noise draws line up with the uninterrupted run), and
  // the tail accumulator is restored rather than recomputed so the final
  // parameter average cannot drift.
  size_t start_iteration = 0;
  if (config.resume != nullptr) {
    const TrainerState& r = *config.resume;
    if (r.params.size() != dim) {
      return Status::FailedPrecondition(StrFormat(
          "trainer checkpoint has %zu parameters, model has %zu",
          r.params.size(), dim));
    }
    if (r.iteration > config.iterations) {
      return Status::FailedPrecondition(StrFormat(
          "trainer checkpoint is at iteration %llu but the run has only %zu",
          static_cast<unsigned long long>(r.iteration), config.iterations));
    }
    if (config.tail_averaging && !r.tail_sum.empty() &&
        r.tail_sum.size() != dim) {
      return Status::FailedPrecondition(
          "trainer checkpoint tail accumulator size mismatch");
    }
    PRIVIM_RETURN_NOT_OK(optimizer->RestoreState(r.optimizer));
    model.params().LoadParams(r.params);
    rng.RestoreState(r.rng);
    if (config.tail_averaging && !r.tail_sum.empty()) tail_sum = r.tail_sum;
    tail_count = r.tail_count;
    stats.losses = r.losses;
    stats.grad_norms = r.grad_norms;
    norm_accum = r.norm_accum;
    norm_count = r.norm_count;
    start_iteration = r.iteration;
  }
  WallTimer timer;

  // Telemetry instruments, registered once outside the hot loop. Everything
  // recorded here is computed from quantities the loop already releases to
  // the trainer (pre-clip norms, the noised batch sum), so it is pure DP
  // post-processing and bit-identical across thread counts.
  Histogram* grad_norm_hist = nullptr;
  TimerStat* iter_timer = nullptr;
  Counter* clipped_counter = nullptr;
  std::vector<float> pre_noise_sum;
  if (config.telemetry != nullptr) {
    MetricsRegistry& reg = config.telemetry->metrics;
    grad_norm_hist =
        reg.GetHistogram("train.grad_norm", ExponentialBuckets(1e-4, 2.0, 24));
    iter_timer = reg.GetTimer("train.iteration");
    clipped_counter = reg.GetCounter("train.clipped_samples");
    config.telemetry->train.reserve(config.telemetry->train.size() +
                                    config.iterations);
    if (config.noise_kind != NoiseKind::kNone) pre_noise_sum.resize(dim);
  }

  // Line 6: per-sample clip to C (skipped in unclipped non-private mode).
  auto clip_sample = [&](SampleSlot& slot) {
    if (config.clip_bound > 0.0) {
      slot.pre_clip_norm = ClipL2(slot.grad, config.clip_bound);
    } else {
      slot.pre_clip_norm = L2Norm(
          std::span<const float>(slot.grad.data(), slot.grad.size()));
    }
  };

  // One per-sample pass (Lines 5-6 of Algorithm 2) on the reference tape,
  // against `sample_model`, writing into `slot`. Pure function of
  // (model params, subgraph); the constant feature leaf is shared, never
  // written.
  auto compute_sample_tape = [&](GnnModel& sample_model,
                                 const CompiledSubgraph& cs,
                                 SampleSlot& slot) {
    Tensor probs = sample_model.Forward(cs.ctx, cs.tape_features);
    Tensor loss = ImPenaltyLoss(cs.ctx, probs, config.loss);
    slot.loss = loss.value()(0, 0);
    sample_model.params().ZeroGrads();
    loss.Backward();
    sample_model.params().FlattenGrads(slot.grad);
    clip_sample(slot);
  };

  // The same pass on the compiled plan: zero heap allocations once the
  // slot's arena is warm. Backward zeroes and fills `slot.grad` directly
  // in flat ParamStore order, replacing ZeroGrads + FlattenGrads.
  auto compute_sample_plan = [&](const CompiledSubgraph& cs, size_t slot_id,
                                 SampleSlot& slot) {
    const GnnPlan& plan = cs.train_plan;
    PlanArena& arena = arenas[slot_id];
    plan.Forward(param_snapshot, cs.features, arena);
    slot.loss = plan.OutputScalar(arena);
    plan.Backward(param_snapshot, cs.features, arena, slot.grad);
    clip_sample(slot);
  };

  MetricsRegistry* ckpt_metrics =
      config.telemetry != nullptr ? &config.telemetry->metrics : nullptr;

  for (size_t t = start_iteration; t < config.iterations; ++t) {
    ScopedTimer iter_scope(iter_timer);
    // Line 5: draw the batch up front. The caller's RNG consumption (B
    // uniform draws, then the noise draw) is identical to the serial
    // implementation for every thread count.
    for (size_t b = 0; b < config.batch_size; ++b) {
      batch_indices[b] = static_cast<size_t>(rng.UniformInt(m));
    }
    // Touch the batch's cache entries on this thread: lazy building is not
    // thread-safe, and after the first epoch this is all pointer reads.
    for (size_t b = 0; b < config.batch_size; ++b) {
      batch_entries[b] = &cache.Get(batch_indices[b]);
    }

    if (config.use_compiled_plan) {
      model.params().FlattenParams(param_snapshot);
      if (pool == nullptr) {
        for (size_t b = 0; b < config.batch_size; ++b) {
          compute_sample_plan(*batch_entries[b], 0, samples[b]);
        }
      } else {
        ParallelForWithSlots(
            pool, 0, config.batch_size, /*grain=*/1, arenas.size(),
            [&](size_t b, size_t slot) {
              compute_sample_plan(*batch_entries[b], slot, samples[b]);
            });
      }
    } else if (pool == nullptr) {
      for (size_t b = 0; b < config.batch_size; ++b) {
        compute_sample_tape(model, *batch_entries[b], samples[b]);
      }
    } else {
      model.params().FlattenParams(param_snapshot);
      for (auto& replica : replicas) {
        replica->params().LoadParams(param_snapshot);
      }
      ParallelForWithSlots(
          pool, 0, config.batch_size, /*grain=*/1, replicas.size(),
          [&](size_t b, size_t slot) {
            compute_sample_tape(*replicas[slot], *batch_entries[b],
                                samples[b]);
          });
    }

    // Reduce in index order: float summation order is fixed, so the batch
    // sum is bit-identical to the serial loop.
    std::fill(batch_sum.begin(), batch_sum.end(), 0.0f);
    double loss_accum = 0.0;
    double iter_norm_accum = 0.0;
    size_t clipped_in_batch = 0;
    for (size_t b = 0; b < config.batch_size; ++b) {
      const SampleSlot& slot = samples[b];
      loss_accum += slot.loss;
      norm_accum += slot.pre_clip_norm;
      iter_norm_accum += slot.pre_clip_norm;
      ++norm_count;
      if (config.clip_bound > 0.0 && slot.pre_clip_norm > config.clip_bound) {
        ++clipped_in_batch;
      }
      if (grad_norm_hist != nullptr) {
        grad_norm_hist->Observe(slot.pre_clip_norm);
      }
      for (size_t i = 0; i < dim; ++i) batch_sum[i] += slot.grad[i];
    }
    if (clipped_counter != nullptr) clipped_counter->Add(clipped_in_batch);
    if (!pre_noise_sum.empty()) {
      std::copy(batch_sum.begin(), batch_sum.end(), pre_noise_sum.begin());
    }

    // Line 8: perturb the summed clipped gradients — the single noise
    // draw, after aggregation, exactly as in the serial algorithm.
    switch (config.noise_kind) {
      case NoiseKind::kNone:
        break;
      case NoiseKind::kGaussian:
        AddGaussianNoise(batch_sum, config.noise_stddev, rng);
        break;
      case NoiseKind::kSml:
        AddSymmetricMultivariateLaplaceNoise(batch_sum,
                                             config.noise_stddev, rng);
        break;
    }

    // L2 of the injected noise vector — post-processing of the released
    // noisy sum against the (already computed) clean sum. Must happen
    // before the 1/B scaling below.
    double noise_l2 = 0.0;
    if (!pre_noise_sum.empty()) {
      double sq = 0.0;
      for (size_t i = 0; i < dim; ++i) {
        const double d = static_cast<double>(batch_sum[i]) -
                         static_cast<double>(pre_noise_sum[i]);
        sq += d * d;
      }
      noise_l2 = std::sqrt(sq);
    }

    // Line 9: update with the averaged private gradient.
    const float inv_b = 1.0f / static_cast<float>(config.batch_size);
    for (float& v : batch_sum) v *= inv_b;
    optimizer->Step(model.params(), batch_sum);

    stats.losses.push_back(loss_accum /
                           static_cast<double>(config.batch_size));
    stats.grad_norms.push_back(iter_norm_accum /
                               static_cast<double>(config.batch_size));

    if (config.telemetry != nullptr) {
      TrainIterationRecord rec;
      rec.iteration = t;
      rec.loss = stats.losses.back();
      rec.mean_grad_norm = stats.grad_norms.back();
      rec.clip_fraction =
          config.clip_bound > 0.0
              ? static_cast<double>(clipped_in_batch) /
                    static_cast<double>(config.batch_size)
              : 0.0;
      rec.noise_l2 = noise_l2;
      config.telemetry->train.push_back(rec);
    }

    if (config.tail_averaging && t >= tail_start) {
      model.params().FlattenParams(snapshot);
      for (size_t i = 0; i < dim; ++i) tail_sum[i] += snapshot[i];
      ++tail_count;
    }

    // Periodic durable snapshot at the iteration boundary. Everything the
    // loop mutates is captured: the next resume replays from here with
    // identical RNG consumption. The fail point fires only after Commit
    // has renamed the file into place, so an injected kill always leaves a
    // loadable checkpoint.
    if (!config.checkpoint_path.empty() && config.checkpoint_every > 0 &&
        (t + 1) % config.checkpoint_every == 0 &&
        t + 1 < config.iterations) {
      TrainerState state;
      state.iteration = t + 1;
      state.params.resize(dim);
      model.params().FlattenParams(state.params);
      state.optimizer = optimizer->ExportState();
      state.rng = rng.SaveState();
      state.tail_sum = tail_sum;
      state.tail_count = tail_count;
      state.losses = stats.losses;
      state.grad_norms = stats.grad_norms;
      state.norm_accum = norm_accum;
      state.norm_count = norm_count;
      PRIVIM_RETURN_NOT_OK(
          SaveTrainerState(state, config.checkpoint_path, ckpt_metrics));
      PRIVIM_RETURN_NOT_OK(Failpoint("privim.ckpt.train"));
    }
  }

  if (config.tail_averaging && tail_count > 0) {
    for (size_t i = 0; i < dim; ++i) {
      snapshot[i] =
          static_cast<float>(tail_sum[i] / static_cast<double>(tail_count));
    }
    model.params().LoadParams(snapshot);
  }

  stats.mean_grad_norm =
      norm_count > 0 ? norm_accum / static_cast<double>(norm_count) : 0.0;
  // A resumed run only timed the iterations it actually executed.
  const size_t executed =
      std::max<size_t>(1, config.iterations - start_iteration);
  stats.seconds_per_iteration =
      timer.ElapsedSeconds() / static_cast<double>(executed);
  return stats;
}

}  // namespace privim
