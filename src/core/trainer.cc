#include "core/trainer.h"

#include <memory>
#include <vector>

#include "common/math_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "dp/mechanisms.h"
#include "nn/features.h"
#include "nn/graph_context.h"
#include "nn/optimizer.h"

namespace privim {

Result<TrainStats> TrainDpGnn(GnnModel& model,
                              const SubgraphContainer& container,
                              const TrainConfig& config, Rng& rng) {
  if (container.empty()) {
    return Status::FailedPrecondition("subgraph container is empty");
  }
  if (config.batch_size == 0 || config.iterations == 0) {
    return Status::InvalidArgument("batch size and iterations must be > 0");
  }
  if (config.clip_bound < 0.0) {
    return Status::InvalidArgument("clip bound must be non-negative");
  }
  if (config.clip_bound == 0.0 && config.noise_kind != NoiseKind::kNone) {
    return Status::InvalidArgument(
        "clipping may only be disabled for noiseless training");
  }

  // Precompute the message-passing context and structural features once per
  // subgraph; they are constant across iterations.
  const size_t m = container.size();
  std::vector<GraphContext> contexts;
  std::vector<Matrix> features;
  contexts.reserve(m);
  features.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    contexts.push_back(BuildGraphContext(container.at(i).local));
    features.push_back(BuildNodeFeatures(container.at(i).local));
  }

  const size_t dim = model.params().num_scalars();
  std::vector<float> per_sample(dim);
  std::vector<float> batch_sum(dim);
  std::unique_ptr<Optimizer> optimizer;
  if (config.optimizer == OptimizerKind::kAdam) {
    optimizer = std::make_unique<AdamOptimizer>(config.learning_rate);
  } else {
    optimizer = std::make_unique<SgdOptimizer>(config.learning_rate);
  }

  // Polyak tail averaging state: accumulate iterates over the last
  // quarter of the run.
  const size_t tail_start =
      config.tail_averaging ? config.iterations - (config.iterations + 3) / 4
                            : config.iterations;
  std::vector<double> tail_sum(config.tail_averaging ? dim : 0, 0.0);
  size_t tail_count = 0;
  std::vector<float> snapshot(config.tail_averaging ? dim : 0);

  TrainStats stats;
  stats.losses.reserve(config.iterations);
  double norm_accum = 0.0;
  size_t norm_count = 0;
  WallTimer timer;

  for (size_t t = 0; t < config.iterations; ++t) {
    std::fill(batch_sum.begin(), batch_sum.end(), 0.0f);
    double loss_accum = 0.0;
    double iter_norm_accum = 0.0;
    for (size_t b = 0; b < config.batch_size; ++b) {
      const size_t idx = static_cast<size_t>(rng.UniformInt(m));
      Tensor x(features[idx]);
      Tensor probs = model.Forward(contexts[idx], x);
      Tensor loss = ImPenaltyLoss(contexts[idx], probs, config.loss);
      loss_accum += loss.value()(0, 0);

      model.params().ZeroGrads();
      loss.Backward();
      model.params().FlattenGrads(per_sample);
      // Line 6: per-sample clip to C (skipped in unclipped non-private
      // mode).
      double pre_clip_norm;
      if (config.clip_bound > 0.0) {
        pre_clip_norm = ClipL2(per_sample, config.clip_bound);
      } else {
        pre_clip_norm = L2Norm(
            std::span<const float>(per_sample.data(), per_sample.size()));
      }
      norm_accum += pre_clip_norm;
      iter_norm_accum += pre_clip_norm;
      ++norm_count;
      for (size_t i = 0; i < dim; ++i) batch_sum[i] += per_sample[i];
    }

    // Line 8: perturb the summed clipped gradients.
    switch (config.noise_kind) {
      case NoiseKind::kNone:
        break;
      case NoiseKind::kGaussian:
        AddGaussianNoise(batch_sum, config.noise_stddev, rng);
        break;
      case NoiseKind::kSml:
        AddSymmetricMultivariateLaplaceNoise(batch_sum,
                                             config.noise_stddev, rng);
        break;
    }

    // Line 9: update with the averaged private gradient.
    const float inv_b = 1.0f / static_cast<float>(config.batch_size);
    for (float& v : batch_sum) v *= inv_b;
    optimizer->Step(model.params(), batch_sum);

    stats.losses.push_back(loss_accum /
                           static_cast<double>(config.batch_size));
    stats.grad_norms.push_back(iter_norm_accum /
                               static_cast<double>(config.batch_size));

    if (config.tail_averaging && t >= tail_start) {
      model.params().FlattenParams(snapshot);
      for (size_t i = 0; i < dim; ++i) tail_sum[i] += snapshot[i];
      ++tail_count;
    }
  }

  if (config.tail_averaging && tail_count > 0) {
    for (size_t i = 0; i < dim; ++i) {
      snapshot[i] =
          static_cast<float>(tail_sum[i] / static_cast<double>(tail_count));
    }
    model.params().LoadParams(snapshot);
  }

  stats.mean_grad_norm =
      norm_count > 0 ? norm_accum / static_cast<double>(norm_count) : 0.0;
  stats.seconds_per_iteration =
      timer.ElapsedSeconds() / static_cast<double>(config.iterations);
  return stats;
}

}  // namespace privim
