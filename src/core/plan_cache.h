#ifndef PRIVIM_CORE_PLAN_CACHE_H_
#define PRIVIM_CORE_PLAN_CACHE_H_

#include <memory>
#include <vector>

#include "core/loss.h"
#include "nn/gnn.h"
#include "nn/graph_context.h"
#include "sampling/container.h"
#include "tensor/matrix.h"
#include "tensor/plan.h"
#include "tensor/tensor.h"

namespace privim {

/// Everything the trainer derives from one subgraph sample, built once and
/// reused across iterations: the message-passing context, the structural
/// node features, a shared constant tape leaf for the reference path (its
/// grad buffer is pre-touched so concurrent Backward() calls never race on
/// the lazy allocation), and — when plan execution is on — the compiled
/// training plan. The plan borrows `ctx`'s edge vectors, so the struct
/// lives behind a stable pointer and `ctx` must not be reassigned after
/// compilation.
struct CompiledSubgraph {
  GraphContext ctx;
  Matrix features;
  Tensor tape_features;
  GnnPlan train_plan;
};

/// Compiles the full training program for one subgraph — model forward,
/// sigmoid head, and the Eq. 5 penalty loss — into a single plan whose
/// [1,1] output is the loss. With the default PlanOptions::Reference(),
/// Forward + OutputScalar + Backward on the result is bit-identical to
/// Forward + ImPenaltyLoss + Backward on the tape (same kernels, same
/// traversal order; see tensor/plan.h). Optimized options
/// (PlanOptions::Native()) enable elementwise fusion and SIMD kernels —
/// same schedule, tolerance-pinned numerics (docs/performance.md).
GnnPlan CompileTrainingPlan(const GnnModel& model, const GraphContext& ctx,
                            const ImLossConfig& loss,
                            const PlanOptions& opts = PlanOptions());

/// Lazy per-subgraph cache of derived training state. Entries are built on
/// first Get() and owned behind stable unique_ptrs, so plan-internal
/// pointers into an entry's GraphContext stay valid as the cache fills.
/// Get() is not thread-safe — the trainer touches each batch's entries
/// serially before the parallel fan-out; the returned entries are
/// immutable afterwards and safe to read concurrently.
class SubgraphPlanCache {
 public:
  /// Borrows `model` and `container`; both must outlive the cache. Plans
  /// are only compiled when `compile_plans` is set (the tape path skips
  /// the compile cost); `plan_opts` selects the compiler passes for every
  /// compiled plan (TrainConfig::plan_optimize picks Native or Reference).
  SubgraphPlanCache(const GnnModel& model,
                    const SubgraphContainer& container,
                    const ImLossConfig& loss, bool compile_plans,
                    const PlanOptions& plan_opts = PlanOptions());

  size_t size() const { return entries_.size(); }

  /// The derived state for subgraph `idx`, built on first use.
  const CompiledSubgraph& Get(size_t idx);

 private:
  const GnnModel& model_;
  const SubgraphContainer& container_;
  ImLossConfig loss_;
  bool compile_plans_;
  PlanOptions plan_opts_;
  std::vector<std::unique_ptr<CompiledSubgraph>> entries_;
};

}  // namespace privim

#endif  // PRIVIM_CORE_PLAN_CACHE_H_
