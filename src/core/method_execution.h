#ifndef PRIVIM_CORE_METHOD_EXECUTION_H_
#define PRIVIM_CORE_METHOD_EXECUTION_H_

// INTERNAL header (docs/api.md, "Stable vs. internal"): the
// stage-decomposed form of RunMethod, consumed by the Pipeline facade and
// the sharded overlap scheduler (src/shard/). Layout may change without
// migration; the stable one-shot entry point is RunMethod (core/privim.h).

#include <memory>
#include <string>

#include "ckpt/checkpoint.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/privim.h"
#include "obs/telemetry.h"
#include "runtime/runtime.h"
#include "sampling/container.h"

namespace privim {

/// One RunMethod run split at the Module-1 boundary, so a scheduler can
/// pipeline subgraph extraction of shard k+1 against training of shard k
/// (src/shard/overlap.h). Create + Extract + Finish back to back IS
/// RunMethod — the same statements in the same order — so every RunMethod
/// contract (checkpoint bit-identity, thread-count invariance) holds for
/// the staged form unchanged.
///
/// The graphs and `rng` are borrowed and must outlive the execution; the
/// config is copied at Create. Stages must run in order, each exactly
/// once. One execution is single-threaded, but independent executions may
/// run concurrently from different threads provided they share no graph
/// and no Rng (the sharded runner gives each shard its own partitioned
/// graphs and `Rng::FromStreamKey` stream — docs/sharding.md).
class MethodExecution {
 public:
  /// Validates the config and runs the checkpoint bootstrap, which on a
  /// resume restores `rng` to the snapshot's stream position.
  static Result<std::unique_ptr<MethodExecution>> Create(
      const Graph& train_graph, const Graph& eval_graph,
      const PrivImConfig& cfg, Rng& rng, RunTelemetry* telemetry = nullptr);

  /// Module 1: extracts the subgraph container (or restores it from the
  /// snapshot) and audits the occurrence bound.
  Status Extract();

  /// Modules 2-4: privacy accounting, DP-GNN training, seed selection and
  /// spread evaluation. Consumes the execution.
  Result<PrivImRunResult> Finish(
      std::unique_ptr<GnnModel>* model_out = nullptr);

  MethodExecution(const MethodExecution&) = delete;
  MethodExecution& operator=(const MethodExecution&) = delete;

 private:
  MethodExecution() = default;

  const Graph* train_graph_ = nullptr;
  const Graph* eval_graph_ = nullptr;
  PrivImConfig cfg_;
  Rng* rng_ = nullptr;
  RunTelemetry* telemetry_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  RuntimeStats runtime_before_;
  bool ckpt_on_ = false;
  std::string pipeline_path_;
  PipelineState ck_;
  PipelineStage resumed_stage_ = PipelineStage::kNone;
  PrivImRunResult result_;
  SubgraphContainer container_;
  bool extracted_ = false;
  bool finished_ = false;
};

}  // namespace privim

#endif  // PRIVIM_CORE_METHOD_EXECUTION_H_
