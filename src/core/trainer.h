#ifndef PRIVIM_CORE_TRAINER_H_
#define PRIVIM_CORE_TRAINER_H_

#include <vector>

#include "ckpt/checkpoint.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/loss.h"
#include "nn/gnn.h"
#include "obs/telemetry.h"
#include "sampling/container.h"

namespace privim {

/// Noise family injected into the summed clipped gradients.
enum class NoiseKind {
  kNone,      // Non-private.
  kGaussian,  // PrivIM / PrivIM* / EGN (Algorithm 2).
  kSml,       // HP baselines (Symmetric Multivariate Laplace).
};

/// Optimizer applied to the privatized gradient. Both are valid under the
/// same accounting: the noisy gradient is produced first (Lines 4-8 of
/// Algorithm 2) and the optimizer is post-processing.
enum class OptimizerKind { kSgd, kAdam };

/// Hyper-parameters of the DP training loop (Algorithm 2).
struct TrainConfig {
  size_t batch_size = 16;
  size_t iterations = 40;
  float learning_rate = 0.05f;
  /// Algorithm 2 uses SGD; Adam is offered for the non-private reference
  /// (with DP noise, Adam's variance normalization amplifies pure noise to
  /// full-size steps, so SGD is the right default for private runs).
  OptimizerKind optimizer = OptimizerKind::kSgd;
  /// Per-sample (per-subgraph) L2 clip bound C. 0 disables clipping
  /// (non-private training only — DP runs must clip).
  double clip_bound = 1.0;
  /// Standard deviation of the injected noise, i.e. sigma * Delta_g for
  /// Gaussian (Line 8) or the SML scale for HP. 0 disables noise.
  double noise_stddev = 0.0;
  NoiseKind noise_kind = NoiseKind::kGaussian;
  /// Polyak tail averaging: release the average of the parameter iterates
  /// over the final quarter of iterations instead of the last iterate.
  /// Pure post-processing of the DP-SGD trajectory (every iterate is
  /// already covered by the T-fold composition), so it costs no privacy
  /// while averaging away much of the per-iteration noise.
  bool tail_averaging = true;
  /// Worker parallelism for the per-subgraph gradient fan-out (0 = use the
  /// global runtime default). Per-sample gradients are computed on model
  /// replicas and reduced into the batch sum in index order before the
  /// single noise draw, so results are bit-identical for every thread
  /// count and the DP accounting is untouched (see docs/runtime.md).
  size_t num_threads = 0;
  /// Execute per-sample passes on compiled execution plans (tensor/plan.h,
  /// core/plan_cache.h) instead of rebuilding the dynamic autograd tape
  /// each pass. Plans are compiled lazily per subgraph, shared across
  /// worker threads (parameters bound per iteration, buffers per worker
  /// slot), and allocation-free once warm. Results are bit-identical to
  /// the tape for every thread count — the tape stays as the
  /// reference/debug path (set to false to use it).
  bool use_compiled_plan = true;
  /// Compile plans with the optimizing passes (elementwise fusion + SIMD
  /// kernels, PlanOptions::Native()) instead of the scalar reference.
  /// Optimized plans remain deterministic and thread-count invariant, but
  /// their gradients match the tape only within the tolerance contract of
  /// docs/performance.md — set to false when bit-identity with the tape is
  /// required (the plan differential suites do). PRIVIM_FORCE_ISA=scalar
  /// downgrades just the SIMD half at runtime. Ignored when
  /// use_compiled_plan is false.
  bool plan_optimize = true;
  ImLossConfig loss;
  /// Optional run telemetry. When set, the loop appends one
  /// TrainIterationRecord per iteration (loss, clip fraction, mean pre-clip
  /// gradient norm, injected-noise L2) and fills a pre-clip gradient-norm
  /// histogram in `telemetry->metrics`. Recording reads only quantities the
  /// loop already releases to the trainer, so it is DP post-processing
  /// (docs/observability.md); values are bit-identical for every thread
  /// count. The cumulative-epsilon field of each record is left NaN — the
  /// privacy ledger is the accountant's job (RunMethod zips it in).
  RunTelemetry* telemetry = nullptr;
  /// When non-empty, a TrainerState snapshot is committed to this path
  /// every `checkpoint_every` iterations (at an iteration boundary, after
  /// the optimizer step and tail-averaging accumulation). The write is
  /// atomic (tmp + rename) and is followed by the `privim.ckpt.train` fail
  /// point, so fault-injection tests can kill the process with the
  /// snapshot already durable.
  std::string checkpoint_path;
  size_t checkpoint_every = 10;
  /// Resume mid-training from a previously saved TrainerState: parameters,
  /// optimizer moments, RNG stream (including the Box-Muller spare), the
  /// tail-averaging accumulator, and the running statistics are restored
  /// bit-exactly and the loop starts at `resume->iteration`. The state
  /// must match this config (parameter count, optimizer kind,
  /// iteration <= iterations) or TrainDpGnn fails with FailedPrecondition.
  /// Borrowed pointer; must outlive the call.
  const TrainerState* resume = nullptr;
};

/// Per-run training telemetry.
struct TrainStats {
  /// Mean batch loss per iteration.
  std::vector<double> losses;
  /// Mean pre-clip per-sample gradient norm over the run (diagnostic).
  double mean_grad_norm = 0.0;
  /// Mean pre-clip per-sample gradient norm per iteration (used by the
  /// clip-bound calibration, which wants the post-warmup scale).
  std::vector<double> grad_norms;
  /// Seconds per iteration ("per-epoch training" in Table III), measured
  /// on the monotonic clock of common/timer.h (never the system wall
  /// clock, which can jump under NTP adjustments mid-run).
  double seconds_per_iteration = 0.0;
};

/// Algorithm 2: DP-SGD over subgraph samples.
///
/// Each subgraph is one "per-sample": its gradient is clipped to C, the
/// batch sum is perturbed with noise of the given kind/scale, and the model
/// is updated with the averaged private gradient. Fails if the container is
/// empty or smaller than the batch size.
Result<TrainStats> TrainDpGnn(GnnModel& model,
                              const SubgraphContainer& container,
                              const TrainConfig& config, Rng& rng);

}  // namespace privim

#endif  // PRIVIM_CORE_TRAINER_H_
