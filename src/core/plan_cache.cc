#include "core/plan_cache.h"

#include "nn/features.h"

namespace privim {

GnnPlan CompileTrainingPlan(const GnnModel& model, const GraphContext& ctx,
                            const ImLossConfig& loss,
                            const PlanOptions& opts) {
  PlanBuilder pb;
  const PlanValId x = pb.Input(ctx.num_nodes, model.config().in_dim);
  const PlanValId probs = pb.Sigmoid(model.LowerLogits(pb, ctx, x));
  return pb.Build(LowerImPenaltyLoss(pb, ctx, probs, loss), opts);
}

SubgraphPlanCache::SubgraphPlanCache(const GnnModel& model,
                                     const SubgraphContainer& container,
                                     const ImLossConfig& loss,
                                     bool compile_plans,
                                     const PlanOptions& plan_opts)
    : model_(model),
      container_(container),
      loss_(loss),
      compile_plans_(compile_plans),
      plan_opts_(plan_opts),
      entries_(container.size()) {}

const CompiledSubgraph& SubgraphPlanCache::Get(size_t idx) {
  PRIVIM_CHECK_LT(idx, entries_.size());
  if (entries_[idx] == nullptr) {
    auto e = std::make_unique<CompiledSubgraph>();
    e->ctx = BuildGraphContext(container_[idx].local);
    e->features = BuildNodeFeatures(container_[idx].local);
    e->tape_features = Tensor(e->features);
    // Materialize the constant leaf's grad buffer now: replica threads
    // share this tensor, and Backward()'s lazy EnsureGrad on a shared node
    // would otherwise race.
    e->tape_features.ZeroGrad();
    if (compile_plans_) {
      e->train_plan = CompileTrainingPlan(model_, e->ctx, loss_, plan_opts_);
    }
    entries_[idx] = std::move(e);
  }
  return *entries_[idx];
}

}  // namespace privim
