#include "core/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/math_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "graph/subgraph.h"
#include "im/metrics.h"
#include "im/seed_selection.h"

namespace privim {

Result<DatasetInstance> PrepareDataset(DatasetId id, uint64_t seed,
                                       size_t seed_count, int eval_steps,
                                       double scale) {
  DatasetInstance instance;
  instance.spec = GetDatasetSpec(id);
  Rng rng(seed);
  PRIVIM_ASSIGN_OR_RETURN(instance.full, MakeDataset(id, rng, scale));

  PRIVIM_ASSIGN_OR_RETURN(NodeSplit split,
                          SplitNodes(instance.full.num_nodes(), rng));
  PRIVIM_ASSIGN_OR_RETURN(Subgraph train_sub,
                          InduceSubgraph(instance.full, split.train));
  PRIVIM_ASSIGN_OR_RETURN(Subgraph eval_sub,
                          InduceSubgraph(instance.full, split.test));
  instance.train_graph = std::move(train_sub.local);
  instance.eval_graph = std::move(eval_sub.local);

  if (instance.eval_graph.num_nodes() < seed_count) {
    return Status::FailedPrecondition(
        StrFormat("eval split of %s too small for k=%zu",
                  instance.spec.name.c_str(), seed_count));
  }

  // CELF ground truth on the evaluation half (Section V-A: w=1, j=1 makes
  // the spread exact and deterministic).
  std::vector<NodeId> candidates(instance.eval_graph.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  SpreadOracle oracle = MakeExactUnitOracle(instance.eval_graph, eval_steps);
  PRIVIM_ASSIGN_OR_RETURN(SeedSelection celf,
                          CelfSelect(candidates, seed_count, oracle));
  instance.celf_spread = celf.spread;
  instance.celf_seeds = std::move(celf.seeds);
  return instance;
}

Result<MethodEval> EvaluateMethod(const DatasetInstance& instance,
                                  const PrivImConfig& config, size_t repeats,
                                  uint64_t seed, RunTelemetry* telemetry) {
  if (repeats == 0) {
    return Status::InvalidArgument("repeats must be positive");
  }
  PRIVIM_RETURN_NOT_OK(config.Validate());
  MethodEval eval;
  eval.method = config.method;
  std::vector<double> spreads;
  std::vector<double> coverages;
  std::vector<double> pre_seconds;
  std::vector<double> epoch_seconds;
  for (size_t rep = 0; rep < repeats; ++rep) {
    Rng rng(seed + 0x9e37 * (rep + 1));
    // Each repeat is its own pipeline run, so it gets its own snapshot
    // directory — an interrupted sweep resumes mid-repeat without
    // disturbing the repeats already finished.
    PrivImConfig rep_config = config;
    if (config.checkpoint.enabled()) {
      rep_config.checkpoint.dir =
          config.checkpoint.dir + "/rep" + std::to_string(rep);
    }
    PRIVIM_ASSIGN_OR_RETURN(
        PrivImRunResult run,
        RunMethod(instance.train_graph, instance.eval_graph, rep_config, rng,
                  /*model_out=*/nullptr, telemetry));
    spreads.push_back(run.spread);
    coverages.push_back(
        CoverageRatioPercent(run.spread, instance.celf_spread));
    pre_seconds.push_back(run.preprocessing_seconds);
    epoch_seconds.push_back(run.per_epoch_seconds);
    eval.last_run = std::move(run);
  }
  eval.mean_spread = Mean(spreads);
  eval.std_spread = StdDev(spreads);
  eval.mean_coverage = Mean(coverages);
  eval.std_coverage = StdDev(coverages);
  eval.mean_preprocessing_seconds = Mean(pre_seconds);
  eval.mean_per_epoch_seconds = Mean(epoch_seconds);
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const size_t mid = v.size() / 2;
    return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
  };
  eval.median_preprocessing_seconds = median(std::move(pre_seconds));
  eval.median_per_epoch_seconds = median(std::move(epoch_seconds));
  return eval;
}

size_t RepeatsFromEnv(size_t fallback) {
  const char* env = std::getenv("PRIVIM_REPEATS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

double ScaleFromEnv() {
  const char* env = std::getenv("PRIVIM_SCALE");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v >= 0.05) return v;
  }
  return 1.0;
}

void PrintBenchHeader(const std::string& title, size_t repeats) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Datasets are synthetic stand-ins matched to Table I's "
               "directedness/degree profile at reduced scale\n"
            << "(see DESIGN.md). Compare *shapes* (method ordering, decay "
               "with epsilon), not absolute values.\n";
  std::cout << "repeats=" << repeats
            << " (PRIVIM_REPEATS; paper uses 5), scale=" << ScaleFromEnv()
            << " (PRIVIM_SCALE)\n\n";
}

}  // namespace privim
