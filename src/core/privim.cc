#include "core/privim.h"

#include "core/indicator.h"
#include "core/method_execution.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ckpt/binary_io.h"
#include "ckpt/failpoint.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "dp/rdp_accountant.h"
#include "dp/sensitivity.h"
#include "graph/algorithms.h"
#include "im/diffusion.h"
#include "im/seed_selection.h"
#include "nn/features.h"
#include "nn/graph_context.h"

namespace privim {

std::string MethodName(Method method) {
  switch (method) {
    case Method::kPrivIm:
      return "PrivIM";
    case Method::kPrivImScs:
      return "PrivIM+SCS";
    case Method::kPrivImStar:
      return "PrivIM*";
    case Method::kEgn:
      return "EGN";
    case Method::kHp:
      return "HP";
    case Method::kHpGrat:
      return "HP-GRAT";
    case Method::kNonPrivate:
      return "Non-Private";
  }
  return "?";
}

Result<Method> ParseMethod(const std::string& name) {
  for (Method m :
       {Method::kPrivIm, Method::kPrivImScs, Method::kPrivImStar,
        Method::kEgn, Method::kHp, Method::kHpGrat, Method::kNonPrivate}) {
    if (MethodName(m) == name) return m;
  }
  return Status::NotFound(StrFormat("unknown method '%s'", name.c_str()));
}

std::string EvalDiffusionName(PrivImConfig::EvalDiffusion diffusion) {
  switch (diffusion) {
    case PrivImConfig::EvalDiffusion::kExactIc:
      return "exact";
    case PrivImConfig::EvalDiffusion::kMonteCarloIc:
      return "mc";
    case PrivImConfig::EvalDiffusion::kLt:
      return "lt";
    case PrivImConfig::EvalDiffusion::kSis:
      return "sis";
  }
  return "?";
}

Result<PrivImConfig::EvalDiffusion> ParseEvalDiffusion(
    const std::string& name) {
  for (PrivImConfig::EvalDiffusion d :
       {PrivImConfig::EvalDiffusion::kExactIc,
        PrivImConfig::EvalDiffusion::kMonteCarloIc,
        PrivImConfig::EvalDiffusion::kLt,
        PrivImConfig::EvalDiffusion::kSis}) {
    if (EvalDiffusionName(d) == name) return d;
  }
  return Status::NotFound(
      StrFormat("unknown eval diffusion '%s' (want exact|mc|lt|sis)",
                name.c_str()));
}

namespace {

/// Validation helpers: every check reports the offending field by its
/// config path so a CLI user can map the message straight to a flag.
Status CheckPositive(size_t v, const char* path) {
  if (v == 0) {
    return Status::InvalidArgument(
        StrFormat("%s must be >= 1, got 0", path));
  }
  return Status::OK();
}

Status CheckProbability(double v, const char* path) {
  if (!(v > 0.0 && v <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("%s must be in (0, 1], got %g", path, v));
  }
  return Status::OK();
}

}  // namespace

Status PrivImConfig::Validate() const {
  // Privacy budget (ignored by the non-private reference).
  if (method != Method::kNonPrivate) {
    if (!(budget.epsilon > 0.0)) {
      return Status::InvalidArgument(StrFormat(
          "budget.epsilon must be > 0, got %g", budget.epsilon));
    }
    if (budget.epsilon < kNonPrivateEpsilon &&
        !(budget.delta > 0.0 && budget.delta < 1.0)) {
      return Status::InvalidArgument(StrFormat(
          "budget.delta must be in (0, 1), got %g", budget.delta));
    }
  }

  // Naive pipeline (theta-projection + RWR).
  PRIVIM_RETURN_NOT_OK(CheckPositive(theta, "theta"));
  PRIVIM_RETURN_NOT_OK(
      CheckProbability(rwr.sampling_rate, "rwr.sampling_rate"));
  PRIVIM_RETURN_NOT_OK(CheckProbability(rwr.restart_prob, "rwr.restart_prob"));
  PRIVIM_RETURN_NOT_OK(CheckPositive(rwr.walk_length, "rwr.walk_length"));
  if (rwr.hop_bound < 1) {
    return Status::InvalidArgument(
        StrFormat("rwr.hop_bound must be >= 1, got %d", rwr.hop_bound));
  }
  if (rwr.subgraph_size < 2) {
    return Status::InvalidArgument(StrFormat(
        "rwr.subgraph_size must be >= 2, got %zu", rwr.subgraph_size));
  }

  // Dual-stage pipeline.
  PRIVIM_RETURN_NOT_OK(
      CheckProbability(freq.sampling_rate, "freq.sampling_rate"));
  PRIVIM_RETURN_NOT_OK(
      CheckProbability(freq.restart_prob, "freq.restart_prob"));
  PRIVIM_RETURN_NOT_OK(CheckPositive(freq.walk_length, "freq.walk_length"));
  if (freq.subgraph_size < 2) {
    return Status::InvalidArgument(StrFormat(
        "freq.subgraph_size must be >= 2, got %zu", freq.subgraph_size));
  }
  PRIVIM_RETURN_NOT_OK(
      CheckPositive(freq.frequency_threshold, "freq.frequency_threshold"));
  PRIVIM_RETURN_NOT_OK(
      CheckPositive(freq.shrink_factor, "freq.shrink_factor"));
  if (freq.decay < 0.0) {
    return Status::InvalidArgument(
        StrFormat("freq.decay must be >= 0, got %g", freq.decay));
  }

  // EGN / HP samplers.
  PRIVIM_RETURN_NOT_OK(
      CheckPositive(egn_subgraph_count, "egn_subgraph_count"));
  PRIVIM_RETURN_NOT_OK(
      CheckProbability(ego.sampling_rate, "ego.sampling_rate"));
  PRIVIM_RETURN_NOT_OK(CheckPositive(ego.fanout, "ego.fanout"));
  if (ego.hops < 1) {
    return Status::InvalidArgument(
        StrFormat("ego.hops must be >= 1, got %d", ego.hops));
  }
  if (ego.max_nodes < 2) {
    return Status::InvalidArgument(
        StrFormat("ego.max_nodes must be >= 2, got %zu", ego.max_nodes));
  }

  // Backbone.
  PRIVIM_RETURN_NOT_OK(CheckPositive(gnn.hidden_dim, "gnn.hidden_dim"));
  PRIVIM_RETURN_NOT_OK(CheckPositive(gnn.num_layers, "gnn.num_layers"));

  // Training.
  PRIVIM_RETURN_NOT_OK(CheckPositive(train.batch_size, "train.batch_size"));
  PRIVIM_RETURN_NOT_OK(CheckPositive(train.iterations, "train.iterations"));
  if (!(train.learning_rate > 0.0f)) {
    return Status::InvalidArgument(StrFormat(
        "train.learning_rate must be > 0, got %g",
        static_cast<double>(train.learning_rate)));
  }
  if (train.clip_bound < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "train.clip_bound must be >= 0, got %g", train.clip_bound));
  }
  if (train.noise_stddev < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "train.noise_stddev must be >= 0, got %g", train.noise_stddev));
  }
  if (!(auto_clip_scale > 0.0)) {
    return Status::InvalidArgument(StrFormat(
        "auto_clip_scale must be > 0, got %g", auto_clip_scale));
  }

  // Evaluation.
  PRIVIM_RETURN_NOT_OK(CheckPositive(seed_count, "seed_count"));
  if (eval_steps < 1) {
    return Status::InvalidArgument(
        StrFormat("eval_steps must be >= 1, got %d", eval_steps));
  }
  PRIVIM_RETURN_NOT_OK(CheckPositive(eval_trials, "eval_trials"));
  PRIVIM_RETURN_NOT_OK(CheckProbability(sis_recovery, "sis_recovery"));

  // Checkpointing.
  if (checkpoint.resume && !checkpoint.enabled()) {
    return Status::InvalidArgument(
        "checkpoint.resume requires checkpoint.dir to be set");
  }
  if (checkpoint.enabled()) {
    PRIVIM_RETURN_NOT_OK(
        CheckPositive(checkpoint.train_every, "checkpoint.train_every"));
  }
  return Status::OK();
}

PrivImConfig MakeDefaultConfig(Method method, double epsilon,
                               size_t train_nodes) {
  PrivImConfig cfg;
  cfg.method = method;
  cfg.budget.epsilon = epsilon;
  // Paper: delta < 1/|V_train|.
  cfg.budget.delta = 0.5 / std::max<double>(1.0, static_cast<double>(
                                                     train_nodes));
  // q = 256/|V_train| (Section V-A), clamped to a valid probability.
  const double q =
      std::min(1.0, 256.0 / std::max<double>(1.0, static_cast<double>(
                                                      train_nodes)));
  cfg.rwr.sampling_rate = q;
  cfg.freq.sampling_rate = q;
  cfg.ego.sampling_rate = q;
  cfg.theta = 10;
  cfg.rwr.walk_length = 200;
  cfg.freq.walk_length = 200;
  cfg.rwr.restart_prob = 0.3;
  cfg.freq.restart_prob = 0.3;
  cfg.rwr.hop_bound = 3;
  cfg.rwr.subgraph_size = 40;
  cfg.freq.subgraph_size = 40;
  cfg.freq.frequency_threshold = 6;
  cfg.freq.shrink_factor = 2;
  // HP's ego sampling with the paper's theta = 10 over 2 hops. Under the
  // shared Theorem-3 accountant this yields N_g = 111 versus PrivIM*'s
  // N_g = M = 6, so HP pays ~18x the noise — the quantitative form of the
  // paper's argument that node-level schemes cannot control IM's broader
  // dependencies (see EXPERIMENTS.md for the observed effect).
  cfg.ego.fanout = 10;
  cfg.ego.hops = 2;
  cfg.ego.max_nodes = 40;

  cfg.gnn.type = GnnType::kGrat;
  if (method == Method::kEgn || method == Method::kHp) {
    cfg.gnn.type = GnnType::kGcn;
  }
  cfg.gnn.in_dim = kNodeFeatureDim;
  cfg.gnn.hidden_dim = 32;
  cfg.gnn.num_layers = 3;

  cfg.train.batch_size = 16;
  cfg.train.iterations = 60;
  cfg.train.learning_rate = 0.05f;
  // Clip at the typical per-subgraph gradient norm (~0.1 for this loss and
  // architecture); a looser bound would only inflate Delta_g = C * N_g and
  // with it the injected noise, without changing the clean gradients.
  cfg.train.clip_bound = 0.1;
  cfg.train.loss.diffusion_steps = 1;
  cfg.train.loss.lambda = 0.25f;

  cfg.seed_count = 50;
  cfg.eval_steps = 1;

  if (method == Method::kNonPrivate) {
    cfg.budget.epsilon = kNonPrivateEpsilon;
    // The non-private reference should be the strongest achievable model:
    // Adam handles the conditioning differences across datasets that SGD's
    // single learning rate cannot.
    cfg.train.optimizer = OptimizerKind::kAdam;
    cfg.train.learning_rate = 0.04f;
    cfg.train.iterations = 100;
  }
  return cfg;
}

void AutoTuneSamplingParams(size_t dataset_nodes, PrivImConfig& config) {
  std::vector<double> n_grid, m_grid;
  for (double n = 10; n <= 80; n += 10) n_grid.push_back(n);
  for (double m = 2; m <= 12; m += 2) m_grid.push_back(m);
  const IndicatorPeak peak = FindIndicatorPeak(
      n_grid, m_grid, std::max<size_t>(dataset_nodes, 3),
      IndicatorParams());
  config.freq.subgraph_size = static_cast<size_t>(peak.n);
  config.freq.frequency_threshold = static_cast<size_t>(peak.m);
  config.rwr.subgraph_size = static_cast<size_t>(peak.n);
}

namespace {

bool IsNonPrivate(const PrivImConfig& cfg) {
  return cfg.method == Method::kNonPrivate ||
         cfg.budget.epsilon >= kNonPrivateEpsilon;
}

uint64_t MixU64(uint64_t h, uint64_t v) {
  uint8_t bytes[8];
  std::memcpy(bytes, &v, sizeof(bytes));
  return Fnv1a(std::span<const uint8_t>(bytes, sizeof(bytes)), h);
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return MixU64(h, bits);
}

/// Binds a checkpoint to its inputs: the content of both graphs plus every
/// config field that changes what the pipeline computes. Resuming against
/// a different dataset or configuration is rejected up front instead of
/// silently producing a chimera of two runs. (The caller's RNG seed is not
/// part of the config — a resumed run always continues the *original*
/// run's stream, which the snapshot carries.)
uint64_t RunFingerprint(const Graph& train_graph, const Graph& eval_graph,
                        const PrivImConfig& cfg) {
  uint64_t h = GraphContentFingerprint(train_graph);
  h = MixU64(h, GraphContentFingerprint(eval_graph, h));
  h = MixU64(h, static_cast<uint64_t>(cfg.method));
  h = MixDouble(h, cfg.budget.epsilon);
  h = MixDouble(h, cfg.budget.delta);
  h = MixU64(h, cfg.theta);
  h = MixU64(h, cfg.rwr.subgraph_size);
  h = MixDouble(h, cfg.rwr.restart_prob);
  h = MixDouble(h, cfg.rwr.sampling_rate);
  h = MixU64(h, cfg.rwr.walk_length);
  h = MixU64(h, static_cast<uint64_t>(cfg.rwr.hop_bound));
  h = MixU64(h, cfg.freq.subgraph_size);
  h = MixDouble(h, cfg.freq.restart_prob);
  h = MixDouble(h, cfg.freq.decay);
  h = MixDouble(h, cfg.freq.sampling_rate);
  h = MixU64(h, cfg.freq.shrink_factor);
  h = MixU64(h, cfg.freq.walk_length);
  h = MixU64(h, cfg.freq.frequency_threshold);
  h = MixU64(h, cfg.egn_subgraph_count);
  h = MixDouble(h, cfg.ego.sampling_rate);
  h = MixU64(h, cfg.ego.fanout);
  h = MixU64(h, static_cast<uint64_t>(cfg.ego.hops));
  h = MixU64(h, cfg.ego.max_nodes);
  h = MixU64(h, static_cast<uint64_t>(cfg.gnn.type));
  h = MixU64(h, cfg.gnn.hidden_dim);
  h = MixU64(h, cfg.gnn.num_layers);
  h = MixU64(h, cfg.train.batch_size);
  h = MixU64(h, cfg.train.iterations);
  h = MixDouble(h, static_cast<double>(cfg.train.learning_rate));
  h = MixU64(h, static_cast<uint64_t>(cfg.train.optimizer));
  h = MixDouble(h, cfg.train.clip_bound);
  h = MixDouble(h, cfg.train.noise_stddev);
  h = MixU64(h, static_cast<uint64_t>(cfg.train.noise_kind));
  h = MixU64(h, cfg.train.tail_averaging ? 1u : 0u);
  h = MixU64(h, static_cast<uint64_t>(cfg.train.loss.diffusion_steps));
  h = MixDouble(h, static_cast<double>(cfg.train.loss.lambda));
  h = MixU64(h, cfg.auto_clip ? 1u : 0u);
  h = MixDouble(h, cfg.auto_clip_scale);
  h = MixU64(h, cfg.seed_count);
  h = MixU64(h, static_cast<uint64_t>(cfg.eval_steps));
  h = MixU64(h, static_cast<uint64_t>(cfg.eval_diffusion));
  h = MixU64(h, cfg.eval_trials);
  h = MixDouble(h, cfg.sis_recovery);
  return h;
}

/// Extracts the subgraph container per the configured method and reports
/// the a-priori occurrence bound the accountant must use. `metrics` (may be
/// null) receives the sampler walk counters.
Result<SubgraphContainer> ExtractContainer(const Graph& train_graph,
                                           const PrivImConfig& cfg, Rng& rng,
                                           PrivImRunResult* result,
                                           MetricsRegistry* metrics) {
  switch (cfg.method) {
    case Method::kPrivIm: {
      // Algorithm 1: theta-projection, then RWR on the bounded graph.
      PRIVIM_ASSIGN_OR_RETURN(
          Graph bounded, ThetaBoundedProjection(train_graph, cfg.theta, rng));
      RwrConfig rwr = cfg.rwr;
      rwr.num_threads = cfg.runtime.num_threads;
      rwr.metrics = metrics;
      RwrSampler sampler(rwr);
      PRIVIM_ASSIGN_OR_RETURN(SubgraphContainer container,
                              sampler.Extract(bounded, rng));
      // Lemma 1 bound, clamped by the container size (a node cannot occur
      // more often than there are subgraphs).
      result->occurrence_bound = std::min(
          OccurrenceBoundNaive(cfg.theta, cfg.gnn.num_layers),
          container.size());
      result->stage1_count = container.size();
      return container;
    }
    case Method::kPrivImScs:
    case Method::kPrivImStar:
    case Method::kNonPrivate: {
      FreqSamplingConfig freq = cfg.freq;
      freq.boundary_stage = cfg.method != Method::kPrivImScs;
      freq.num_threads = cfg.runtime.num_threads;
      freq.metrics = metrics;
      FreqSampler sampler(freq);
      PRIVIM_ASSIGN_OR_RETURN(DualStageResult dual,
                              sampler.Extract(train_graph, rng));
      result->occurrence_bound =
          std::min(freq.frequency_threshold, dual.container.size());
      result->stage1_count = dual.stage1_count;
      result->stage2_count = dual.stage2_count;
      return std::move(dual.container);
    }
    case Method::kEgn: {
      const size_t n = std::min<size_t>(cfg.freq.subgraph_size,
                                        train_graph.num_nodes());
      PRIVIM_ASSIGN_OR_RETURN(
          SubgraphContainer container,
          EgnRandomSample(train_graph, cfg.egn_subgraph_count,
                          std::max<size_t>(2, n), rng));
      // Uniform random subsets admit no better a-priori bound than the
      // container size itself.
      result->occurrence_bound = container.size();
      result->stage1_count = container.size();
      return container;
    }
    case Method::kHp:
    case Method::kHpGrat: {
      // HP bounds the maximum in-degree theta before ego-sampling (Xiang
      // et al.); the projection is what makes the geometric occurrence
      // bound a-priori valid (at most sum theta^i roots can reach a node
      // within `hops`).
      PRIVIM_ASSIGN_OR_RETURN(
          Graph bounded,
          ThetaBoundedProjection(train_graph, cfg.ego.fanout, rng));
      PRIVIM_ASSIGN_OR_RETURN(SubgraphContainer container,
                              EgoSample(bounded, cfg.ego, rng));
      result->occurrence_bound =
          EgoOccurrenceBound(cfg.ego, container.size());
      result->stage1_count = container.size();
      return container;
    }
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace

Result<std::unique_ptr<MethodExecution>> MethodExecution::Create(
    const Graph& train_graph, const Graph& eval_graph,
    const PrivImConfig& cfg, Rng& rng, RunTelemetry* telemetry) {
  PRIVIM_RETURN_NOT_OK(cfg.Validate());
  if (eval_graph.num_nodes() < cfg.seed_count) {
    return Status::InvalidArgument(
        StrFormat("evaluation graph has %zu nodes < k=%zu",
                  eval_graph.num_nodes(), cfg.seed_count));
  }
  std::unique_ptr<MethodExecution> exec(new MethodExecution());
  exec->train_graph_ = &train_graph;
  exec->eval_graph_ = &eval_graph;
  exec->cfg_ = cfg;
  exec->rng_ = &rng;
  exec->telemetry_ = telemetry;
  exec->metrics_ = telemetry != nullptr ? &telemetry->metrics : nullptr;
  // Runtime-pool counters are process-wide and monotonic; scope them to
  // this run by differencing a before/after snapshot.
  exec->runtime_before_ = GetRuntimeStats();

  // ---- Checkpoint bootstrap. ----
  // `ck_` accumulates the run's durable state; on a resume it starts from
  // the last committed stage and the stages it covers are skipped below.
  // The caller's Rng is restored from the snapshot, so the stream position
  // at the point where execution rejoins is exactly what the uninterrupted
  // run had there.
  exec->ckpt_on_ = cfg.checkpoint.enabled();
  exec->pipeline_path_ = exec->ckpt_on_
                             ? PipelineCheckpointPath(cfg.checkpoint.dir)
                             : std::string();
  if (exec->ckpt_on_) {
    exec->ck_.fingerprint = RunFingerprint(train_graph, eval_graph, cfg);
  }
  if (exec->ckpt_on_ && cfg.checkpoint.resume &&
      FileExists(exec->pipeline_path_)) {
    const uint64_t expected = exec->ck_.fingerprint;
    PRIVIM_ASSIGN_OR_RETURN(
        exec->ck_, LoadPipelineState(exec->pipeline_path_, exec->metrics_));
    if (exec->ck_.fingerprint != expected) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint '%s' was written by a different run (fingerprint "
          "%llx, this run is %llx): refusing to resume",
          exec->pipeline_path_.c_str(),
          static_cast<unsigned long long>(exec->ck_.fingerprint),
          static_cast<unsigned long long>(expected)));
    }
    exec->resumed_stage_ = exec->ck_.stage;
    rng.RestoreState(exec->ck_.rng);
  }
  return exec;
}

Status MethodExecution::Extract() {
  if (extracted_) {
    return Status::FailedPrecondition(
        "MethodExecution::Extract called twice");
  }
  extracted_ = true;
  const Graph& train_graph = *train_graph_;
  const PrivImConfig& cfg = cfg_;
  Rng& rng = *rng_;

  // ---- Module 1: subgraph extraction. ----
  if (resumed_stage_ >= PipelineStage::kExtracted) {
    // Copy, not move: `ck_` must keep the container so the kCalibrated
    // snapshot (written in Finish on a resumed run) still carries it for
    // the next resume. The uninterrupted path holds both copies too.
    container_ = ck_.container;
    result_.occurrence_bound = ck_.occurrence_bound;
    result_.container_size = ck_.container_size;
    result_.stage1_count = ck_.stage1_count;
    result_.stage2_count = ck_.stage2_count;
    result_.audited_max_occurrence = ck_.audited_max_occurrence;
    result_.preprocessing_seconds = ck_.preprocessing_seconds;
  } else {
    WallTimer preprocess_timer;
    PRIVIM_ASSIGN_OR_RETURN(
        container_,
        ExtractContainer(train_graph, cfg, rng, &result_, metrics_));
    if (container_.empty()) {
      return Status::FailedPrecondition(
          "sampling produced no subgraphs (graph too small or sampling rate "
          "too low)");
    }
    result_.container_size = container_.size();
    result_.preprocessing_seconds = preprocess_timer.ElapsedSeconds();

    // Audit: the realized occurrences must respect the accountant's bound
    // for the frequency-capped pipelines. (EGN's bound is m by
    // construction.)
    PRIVIM_ASSIGN_OR_RETURN(result_.audited_max_occurrence,
                            container_.MaxOccurrence(train_graph.num_nodes()));
    if (result_.audited_max_occurrence > result_.occurrence_bound) {
      return Status::Internal(StrFormat(
          "occurrence audit failed: observed %zu > bound %zu",
          result_.audited_max_occurrence, result_.occurrence_bound));
    }
    if (ckpt_on_) {
      ck_.stage = PipelineStage::kExtracted;
      ck_.rng = rng.SaveState();
      ck_.container = container_;
      ck_.occurrence_bound = result_.occurrence_bound;
      ck_.container_size = result_.container_size;
      ck_.stage1_count = result_.stage1_count;
      ck_.stage2_count = result_.stage2_count;
      ck_.audited_max_occurrence = result_.audited_max_occurrence;
      ck_.preprocessing_seconds = result_.preprocessing_seconds;
      PRIVIM_RETURN_NOT_OK(SavePipelineState(ck_, pipeline_path_, metrics_));
      PRIVIM_RETURN_NOT_OK(Failpoint("privim.ckpt.after_extract"));
    }
  }
  return Status::OK();
}

Result<PrivImRunResult> MethodExecution::Finish(
    std::unique_ptr<GnnModel>* model_out) {
  if (!extracted_) {
    return Status::FailedPrecondition(
        "MethodExecution::Finish called before Extract");
  }
  if (finished_) {
    return Status::FailedPrecondition(
        "MethodExecution::Finish called twice");
  }
  finished_ = true;
  const Graph& eval_graph = *eval_graph_;
  const PrivImConfig& cfg = cfg_;
  Rng& rng = *rng_;
  RunTelemetry* telemetry = telemetry_;
  MetricsRegistry* metrics = metrics_;
  PrivImRunResult& result = result_;
  SubgraphContainer& container = container_;
  const PipelineStage resumed_stage = resumed_stage_;
  const bool ckpt_on = ckpt_on_;
  const std::string& pipeline_path = pipeline_path_;
  PipelineState& ck = ck_;

  // ---- Module 2: privacy accounting. ----
  TrainConfig train_cfg = cfg.train;
  train_cfg.num_threads = cfg.runtime.num_threads;
  train_cfg.telemetry = telemetry;
  // Cumulative epsilon after each iteration; stays empty on non-private
  // runs (their records keep a NaN epsilon).
  std::vector<double> epsilon_ledger;
  const bool non_private = IsNonPrivate(cfg);
  if (resumed_stage >= PipelineStage::kCalibrated) {
    // Restore the calibration outcome verbatim — including the epsilon
    // ledger for iterations this process will never re-run, which is what
    // keeps the resumed run's privacy report identical to the
    // uninterrupted one.
    train_cfg.clip_bound = ck.clip_bound;
    train_cfg.learning_rate = ck.learning_rate;
    train_cfg.noise_stddev = ck.noise_stddev;
    train_cfg.noise_kind = static_cast<NoiseKind>(ck.noise_kind);
    train_cfg.batch_size = ck.batch_size;
    result.sigma = ck.accountant.sigma;
    result.epsilon_spent = ck.accountant.epsilon_spent;
    epsilon_ledger = ck.accountant.ledger;
  } else {
    // Sparse graphs can yield fewer subgraphs than the configured batch
    // size; the accountant requires B <= m, so clamp (this only makes the
    // subsampling, and hence the guarantee, more conservative).
    train_cfg.batch_size = std::min(train_cfg.batch_size, container.size());
    if (non_private) {
      train_cfg.noise_kind = NoiseKind::kNone;
      train_cfg.noise_stddev = 0.0;
      train_cfg.clip_bound = 0.0;  // epsilon = inf: no clipping either.
      result.sigma = 0.0;
      result.epsilon_spent = kNonPrivateEpsilon;
    } else {
      if (cfg.auto_clip) {
        // Dry-run a throwaway model for a few noiseless iterations to learn
        // the per-subgraph gradient scale, and clip there.
        GnnConfig probe_cfg = cfg.gnn;
        probe_cfg.in_dim = kNodeFeatureDim;
        Rng probe_rng = rng.Fork();
        GnnModel probe(probe_cfg, probe_rng);
        TrainConfig dry = cfg.train;
        dry.num_threads = cfg.runtime.num_threads;
        // The dry run is a calibration probe, not the released training run;
        // its iterations must not pollute the telemetry record.
        dry.telemetry = nullptr;
        dry.batch_size = std::min<size_t>(train_cfg.batch_size, 8);
        dry.iterations = std::max<size_t>(8, cfg.train.iterations / 4);
        dry.noise_kind = NoiseKind::kNone;
        dry.noise_stddev = 0.0;
        dry.tail_averaging = false;
        PRIVIM_ASSIGN_OR_RETURN(TrainStats dry_stats,
                                TrainDpGnn(probe, container, dry, probe_rng));
        // Gradient norms shrink after warmup; clip at the post-warmup scale
        // (median over the second half of the dry run).
        const size_t half = dry_stats.grad_norms.size() / 2;
        std::vector<double> tail(dry_stats.grad_norms.begin() + half,
                                 dry_stats.grad_norms.end());
        std::sort(tail.begin(), tail.end());
        const double median =
            tail.empty() ? dry_stats.mean_grad_norm : tail[tail.size() / 2];
        if (median > 0.0) {
          train_cfg.clip_bound = cfg.auto_clip_scale * median;
          // Clipped SGD moves ~lr*C per step; rescale the learning rate so
          // the per-step movement matches the configured lr at C = 0.1
          // (keeping training speed independent of the gradient scale).
          train_cfg.learning_rate = std::min(
              2.0f, cfg.train.learning_rate *
                        static_cast<float>(0.1 / train_cfg.clip_bound));
        }
      }
      DpSgdSpec spec;
      spec.max_occurrences = std::max<size_t>(1, result.occurrence_bound);
      spec.container_size = container.size();
      spec.batch_size = train_cfg.batch_size;
      spec.iterations = train_cfg.iterations;
      spec.clip_bound = train_cfg.clip_bound;
      PRIVIM_ASSIGN_OR_RETURN(RdpAccountant accountant,
                              RdpAccountant::Create(spec));
      PRIVIM_ASSIGN_OR_RETURN(double sigma,
                              accountant.CalibrateSigma(cfg.budget));
      result.sigma = sigma;
      PRIVIM_ASSIGN_OR_RETURN(result.epsilon_spent,
                              accountant.Epsilon(sigma, cfg.budget.delta));
      // Always computed on private runs (it is cheap accountant math): the
      // result carries it so the sharded runner can compose per-shard
      // ledgers at merge time (src/shard/shard_merger.h).
      PRIVIM_ASSIGN_OR_RETURN(
          epsilon_ledger, accountant.EpsilonLedger(sigma, cfg.budget.delta));
      const double delta_g =
          NodeSensitivity(train_cfg.clip_bound, spec.max_occurrences);
      train_cfg.noise_stddev = sigma * delta_g;
      train_cfg.noise_kind =
          (cfg.method == Method::kHp || cfg.method == Method::kHpGrat)
              ? NoiseKind::kSml
              : NoiseKind::kGaussian;
      if (ckpt_on) ck.accountant.spec = spec;
    }
    // Stage-boundary snapshot, taken BEFORE the model-init fork below: the
    // resumed process replays that fork from the restored stream, so the
    // initial parameters come out identical.
    if (ckpt_on) {
      ck.stage = PipelineStage::kCalibrated;
      ck.rng = rng.SaveState();
      ck.accountant.sigma = result.sigma;
      ck.accountant.delta = cfg.budget.delta;
      ck.accountant.epsilon_spent = result.epsilon_spent;
      ck.accountant.ledger = epsilon_ledger;
      ck.clip_bound = train_cfg.clip_bound;
      ck.learning_rate = train_cfg.learning_rate;
      ck.noise_stddev = train_cfg.noise_stddev;
      ck.noise_kind = static_cast<uint32_t>(train_cfg.noise_kind);
      ck.batch_size = train_cfg.batch_size;
      PRIVIM_RETURN_NOT_OK(SavePipelineState(ck, pipeline_path, metrics));
      PRIVIM_RETURN_NOT_OK(Failpoint("privim.ckpt.after_calibrate"));
    }
  }
  result.noise_stddev = train_cfg.noise_stddev;
  result.clip_bound_used = train_cfg.clip_bound;
  result.epsilon_ledger = epsilon_ledger;

  // ---- Module 3: DP-GNN training. ----
  GnnConfig gnn_cfg = cfg.gnn;
  gnn_cfg.in_dim = kNodeFeatureDim;
  std::unique_ptr<GnnModel> model_ptr;
  if (resumed_stage >= PipelineStage::kTrained) {
    // Training already completed in a previous process: rebuild the model
    // shell with a throwaway RNG (the init randomness is overwritten) and
    // load the trained parameters. The caller's Rng was restored to its
    // post-training position above, so evaluation consumes the stream
    // exactly as the uninterrupted run did.
    Rng shell_rng(0x5eed);
    model_ptr = std::make_unique<GnnModel>(gnn_cfg, shell_rng);
    if (model_ptr->params().num_scalars() != ck.model_params.size()) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint model has %zu parameters, this config builds %zu",
          ck.model_params.size(), model_ptr->params().num_scalars()));
    }
    model_ptr->params().LoadParams(ck.model_params);
    result.per_epoch_seconds = ck.per_epoch_seconds;
    result.final_loss = ck.final_loss;
  } else {
    Rng init_rng = rng.Fork();
    model_ptr = std::make_unique<GnnModel>(gnn_cfg, init_rng);
    // Mid-training resume: a trainer snapshot is only meaningful while the
    // pipeline checkpoint sits at the calibration boundary (a stale
    // train.ckpt from an older run is ignored otherwise).
    TrainerState trainer_state;
    if (ckpt_on) {
      train_cfg.checkpoint_path = TrainerCheckpointPath(cfg.checkpoint.dir);
      train_cfg.checkpoint_every = cfg.checkpoint.train_every;
      if (cfg.checkpoint.resume &&
          resumed_stage == PipelineStage::kCalibrated &&
          FileExists(train_cfg.checkpoint_path)) {
        PRIVIM_ASSIGN_OR_RETURN(
            trainer_state,
            LoadTrainerState(train_cfg.checkpoint_path, metrics));
        train_cfg.resume = &trainer_state;
      }
    }
    const size_t train_records_before =
        telemetry != nullptr ? telemetry->train.size() : 0;
    PRIVIM_ASSIGN_OR_RETURN(
        TrainStats stats, TrainDpGnn(*model_ptr, container, train_cfg, rng));
    if (telemetry != nullptr && !epsilon_ledger.empty()) {
      // Zip the accountant's ledger into the records this run appended:
      // record for iteration t gets the epsilon spent after t+1 iterations.
      for (size_t i = train_records_before; i < telemetry->train.size();
           ++i) {
        const size_t t = telemetry->train[i].iteration;
        if (t < epsilon_ledger.size()) {
          telemetry->train[i].epsilon = epsilon_ledger[t];
        }
      }
    }
    result.per_epoch_seconds = stats.seconds_per_iteration;
    if (!stats.losses.empty()) {
      const size_t tail = std::max<size_t>(1, stats.losses.size() / 4);
      std::vector<double> last(stats.losses.end() - tail,
                               stats.losses.end());
      result.final_loss = Mean(last);
    }
    if (ckpt_on) {
      ck.stage = PipelineStage::kTrained;
      ck.rng = rng.SaveState();
      // The container is training-stage input; nothing downstream reads
      // it, so the trained snapshot drops it to keep the file small.
      ck.container = SubgraphContainer();
      ck.model_params.resize(model_ptr->params().num_scalars());
      model_ptr->params().FlattenParams(ck.model_params);
      ck.per_epoch_seconds = result.per_epoch_seconds;
      ck.final_loss = result.final_loss;
      PRIVIM_RETURN_NOT_OK(SavePipelineState(ck, pipeline_path, metrics));
      PRIVIM_RETURN_NOT_OK(Failpoint("privim.ckpt.after_train"));
    }
  }
  GnnModel& model = *model_ptr;

  // ---- Inference: score the evaluation graph, select top-k seeds. ----
  GraphContext eval_ctx = BuildGraphContext(eval_graph);
  Tensor eval_x(BuildNodeFeatures(eval_graph));
  // Rank by pre-sigmoid logits: identical ordering to the probabilities,
  // but immune to float32 sigmoid saturation flattening the top of the
  // ranking on graphs where most scores push toward 1.
  Tensor logits = model.ForwardLogits(eval_ctx, eval_x);
  std::vector<double> scores(eval_graph.num_nodes());
  for (size_t u = 0; u < eval_graph.num_nodes(); ++u) {
    scores[u] = logits.value()(u, 0);
  }
  std::vector<NodeId> candidates(eval_graph.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  // Random tie-breaking: a noise-destroyed model whose scores saturate to
  // one value must degrade to *random* seed selection, not to ascending
  // node-id order (which is hub-biased under preferential-attachment
  // generators and would flatter weak baselines).
  rng.Shuffle(candidates);
  PRIVIM_ASSIGN_OR_RETURN(SpreadOracle oracle,
                          MakeEvalOracle(eval_graph, cfg, rng, metrics));
  PRIVIM_ASSIGN_OR_RETURN(
      SeedSelection selection,
      TopKByScore(candidates, cfg.seed_count, scores,
                  InstrumentedOracle(oracle, metrics)));
  result.seeds = std::move(selection.seeds);
  result.spread = selection.spread;
  result.seed_scores.reserve(result.seeds.size());
  for (NodeId s : result.seeds) result.seed_scores.push_back(scores[s]);
  if (model_out != nullptr) *model_out = std::move(model_ptr);

  if (metrics != nullptr) {
    // Headline scalars of the run (DP outputs already in `result`).
    metrics->GetGauge("dp.sigma")->Set(result.sigma);
    metrics->GetGauge("dp.epsilon_spent")->Set(result.epsilon_spent);
    metrics->GetGauge("dp.noise_stddev")->Set(result.noise_stddev);
    metrics->GetGauge("dp.clip_bound")->Set(result.clip_bound_used);
    metrics->GetGauge("sampler.container_size")
        ->Set(static_cast<double>(result.container_size));

    // Runtime-pool usage scoped to this run (process-wide counters,
    // differenced; the queue high-water mark cannot be differenced, so it
    // is reported as the process-lifetime maximum).
    const RuntimeStats after = GetRuntimeStats();
    metrics->GetCounter("runtime.parallel_for_calls")
        ->Add(after.parallel_for_calls - runtime_before_.parallel_for_calls);
    metrics->GetCounter("runtime.tasks_executed")
        ->Add(after.tasks_executed - runtime_before_.tasks_executed);
    metrics->GetTimer("runtime.parallel_for")
        ->Add(after.parallel_for_calls - runtime_before_.parallel_for_calls,
              after.parallel_for_nanos - runtime_before_.parallel_for_nanos);
    metrics->GetGauge("runtime.pool_max_queue_depth")
        ->Set(static_cast<double>(after.max_queue_depth));
  }
  return std::move(result_);
}

Result<SpreadOracle> MakeEvalOracle(const Graph& g, const PrivImConfig& cfg,
                                    Rng& rng, MetricsRegistry* metrics) {
  switch (cfg.eval_diffusion) {
    case PrivImConfig::EvalDiffusion::kExactIc:
      return MakeExactUnitOracle(g, cfg.eval_steps);
    case PrivImConfig::EvalDiffusion::kMonteCarloIc:
      return MakeMonteCarloOracle(g, cfg.eval_trials, rng, cfg.eval_steps,
                                  cfg.runtime.num_threads, metrics);
    case PrivImConfig::EvalDiffusion::kLt:
      return MakeLtOracle(g, cfg.eval_trials, rng, cfg.eval_steps);
    case PrivImConfig::EvalDiffusion::kSis:
      return MakeSisOracle(g, cfg.eval_trials, cfg.sis_recovery,
                           std::max(cfg.eval_steps, 1), rng);
  }
  return Status::InvalidArgument("unknown eval_diffusion");
}

Result<PrivImRunResult> RunMethod(const Graph& train_graph,
                                  const Graph& eval_graph,
                                  const PrivImConfig& cfg, Rng& rng,
                                  std::unique_ptr<GnnModel>* model_out,
                                  RunTelemetry* telemetry) {
  PRIVIM_ASSIGN_OR_RETURN(
      std::unique_ptr<MethodExecution> exec,
      MethodExecution::Create(train_graph, eval_graph, cfg, rng, telemetry));
  PRIVIM_RETURN_NOT_OK(exec->Extract());
  return exec->Finish(model_out);
}

}  // namespace privim
