#ifndef PRIVIM_CORE_RETRAIN_POLICY_H_
#define PRIVIM_CORE_RETRAIN_POLICY_H_

#include <cstddef>
#include <cstdint>

namespace privim {

/// When to retrain the DP-GNN on a drifting graph (docs/streaming.md).
///
/// Retraining is the only operation in the streaming pipeline that spends
/// privacy budget — the sketch/ball repairs are post-processing of the
/// already-released model and cost nothing — so the trigger policy IS the
/// epsilon-vs-utility knob: retrain often and the model tracks the graph
/// but the continual-observation ledger climbs fast; retrain rarely and
/// epsilon is cheap but the served seeds go stale. Two standard triggers,
/// either of which fires a retrain:
///
///  - drift: the fraction of arcs changed (added + removed, counted per
///    event, net of nothing) since the last training exceeds
///    `drift_fraction` of the arc count the model was trained on;
///  - staleness: more than `staleness_batches` update batches were applied
///    since the last training, regardless of their size.
///
/// Setting a trigger to 0 disables it; with both disabled the pipeline
/// never retrains (the train-once baseline).
struct RetrainPolicyConfig {
  double drift_fraction = 0.1;
  size_t staleness_batches = 0;
};

/// Tracks drift/staleness counters between retraining rounds. Plain data
/// + arithmetic so the stream checkpoint can round-trip it exactly
/// (State below); all decisions are deterministic functions of the
/// applied update history.
class RetrainPolicy {
 public:
  /// Serializable snapshot (src/ckpt/stream_state.*).
  struct State {
    uint64_t arcs_at_train = 0;
    uint64_t changed_since_train = 0;
    uint64_t batches_since_train = 0;

    bool operator==(const State&) const = default;
  };

  explicit RetrainPolicy(const RetrainPolicyConfig& config)
      : config_(config) {}
  RetrainPolicy(const RetrainPolicyConfig& config, const State& state)
      : config_(config), state_(state) {}

  /// Records a completed training round on a graph with `visible_arcs`
  /// arcs; resets the drift/staleness counters.
  void NoteTrained(uint64_t visible_arcs) {
    state_.arcs_at_train = visible_arcs;
    state_.changed_since_train = 0;
    state_.batches_since_train = 0;
  }

  /// Records one applied update batch with `changed_arcs` arc mutations
  /// (each add/remove event counts one; node removals count each arc they
  /// drop).
  void NoteBatch(uint64_t changed_arcs) {
    state_.changed_since_train += changed_arcs;
    ++state_.batches_since_train;
  }

  /// True when either enabled trigger has fired. Never true before the
  /// first NoteTrained on an empty-arc graph guard: a zero-arc training
  /// baseline treats any change as 100% drift.
  bool ShouldRetrain() const {
    if (config_.drift_fraction > 0.0 && state_.changed_since_train > 0) {
      const double base = static_cast<double>(state_.arcs_at_train);
      const double changed = static_cast<double>(state_.changed_since_train);
      if (base <= 0.0 || changed >= config_.drift_fraction * base) {
        return true;
      }
    }
    return config_.staleness_batches > 0 &&
           state_.batches_since_train >= config_.staleness_batches;
  }

  const State& state() const { return state_; }
  const RetrainPolicyConfig& config() const { return config_; }

 private:
  RetrainPolicyConfig config_;
  State state_;
};

}  // namespace privim

#endif  // PRIVIM_CORE_RETRAIN_POLICY_H_
