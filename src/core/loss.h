#ifndef PRIVIM_CORE_LOSS_H_
#define PRIVIM_CORE_LOSS_H_

#include "nn/graph_context.h"
#include "tensor/plan.h"
#include "tensor/tensor.h"

namespace privim {

/// Configuration of the probabilistic-penalty IM loss (Eq. 5).
struct ImLossConfig {
  /// Diffusion steps j. The paper restricts j <= r (GNN depth) and
  /// evaluates with j = 1.
  int diffusion_steps = 1;
  /// Trade-off lambda between total non-influence probability and seed-set
  /// mass.
  float lambda = 0.25f;
};

/// Erdős probabilistic-penalty loss for influence maximization (Eq. 5):
///
///   L = mean_u prod_{i=1..j} (1 - p_hat_i(u))  +  lambda * mean_u x_u,
///
/// where x = `seed_probs` (the GNN's per-node seed probabilities, [n,1])
/// and p_hat_i is the message-passing upper bound of the i-th step IC
/// influence probability (Theorem 2):
///   p_hat_i(u) = phi( sum_{v in N(u)} w_vu h_v^{(i-1)} ),  h^{(0)} = x,
/// with phi(z) = 1 - exp(-max(z,0)) — a smooth surrogate that stays an
/// upper-bounding companion of the IC non-activation product (the bound
/// direction is unit-tested).
///
/// Means (rather than sums) keep the per-sample gradient scale independent
/// of the subgraph size, so one clip bound C works across stage-1 (size n)
/// and stage-2 (size n/s) subgraphs.
///
/// Returns a [1,1] scalar tensor wired into `seed_probs`'s tape.
Tensor ImPenaltyLoss(const GraphContext& ctx, const Tensor& seed_probs,
                     const ImLossConfig& config);

/// Records the same computation into a PlanBuilder: `seed_probs` is a
/// [ctx.num_nodes, 1] value id (typically the Sigmoid of
/// GnnModel::LowerLogits); returns the [1,1] loss value id. Used by
/// core/plan_cache.cc to compile full training plans; results are
/// bit-identical to ImPenaltyLoss on the tape.
PlanValId LowerImPenaltyLoss(PlanBuilder& pb, const GraphContext& ctx,
                             PlanValId seed_probs,
                             const ImLossConfig& config);

}  // namespace privim

#endif  // PRIVIM_CORE_LOSS_H_
