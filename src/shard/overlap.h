#ifndef PRIVIM_SHARD_OVERLAP_H_
#define PRIVIM_SHARD_OVERLAP_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace privim {

/// Scheduling policy for the two-stage shard pipeline (docs/sharding.md,
/// "Overlap timing").
struct OverlapOptions {
  /// false = strict serial execution — A(0) B(0) A(1) B(1) ... on the
  /// calling thread. This is the baseline BM_ShardOverlap gates against.
  bool overlap = true;
  /// Maximum shards simultaneously in flight (each in-flight shard keeps
  /// its subgraph container and model resident, so this bounds peak
  /// memory). Must be >= 1; 1 degenerates to the serial schedule.
  size_t max_in_flight = 2;
};

/// Runs stage_a(s) then stage_b(s) for every shard s in [0, num_shards),
/// overlapping across shards: with `overlap` on, up to `max_in_flight`
/// shards are in flight at once, so stage_a of shard k+1 (subgraph
/// sampling) runs while stage_b of shard k (training + selection) is still
/// executing. Within one shard the stages are always ordered.
///
/// The schedulers are dedicated std::threads, NEVER the shared runtime
/// pool: the stages themselves issue ParallelFor on the shared pool, and a
/// ParallelFor caller blocks in TaskGroup::Wait without stealing work —
/// parking this orchestration on pool workers could leave every worker
/// blocked on nested chunks that no thread is left to execute.
///
/// Shards are claimed in index order. On the first stage failure the
/// failing Status is recorded, in-flight shards finish their current
/// stage, unstarted shards are skipped, and that first Status is returned.
Status RunStagePipeline(size_t num_shards, const OverlapOptions& options,
                        const std::function<Status(size_t)>& stage_a,
                        const std::function<Status(size_t)>& stage_b);

}  // namespace privim

#endif  // PRIVIM_SHARD_OVERLAP_H_
