#include "shard/overlap.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace privim {

Status RunStagePipeline(size_t num_shards, const OverlapOptions& options,
                        const std::function<Status(size_t)>& stage_a,
                        const std::function<Status(size_t)>& stage_b) {
  if (stage_a == nullptr || stage_b == nullptr) {
    return Status::InvalidArgument("RunStagePipeline: null stage callback");
  }
  if (options.max_in_flight == 0) {
    return Status::InvalidArgument(
        "overlap.max_in_flight must be >= 1, got 0");
  }

  if (!options.overlap || options.max_in_flight == 1 || num_shards <= 1) {
    for (size_t s = 0; s < num_shards; ++s) {
      PRIVIM_RETURN_NOT_OK(stage_a(s));
      PRIVIM_RETURN_NOT_OK(stage_b(s));
    }
    return Status::OK();
  }

  std::atomic<size_t> next_shard{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  Status first_error;  // Guarded by mu.

  auto worker = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_acquire)) return;
      const size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (s >= num_shards) return;
      Status st = stage_a(s);
      if (st.ok()) st = stage_b(s);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = std::move(st);
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  };

  const size_t workers = std::min(options.max_in_flight, num_shards);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t i = 0; i < workers; ++i) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return first_error;
}

}  // namespace privim
