#include "shard/shard_runner.h"

#include <memory>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/method_execution.h"
#include "runtime/runtime.h"
#include "shard/shard_merger.h"

namespace privim {

namespace {

// Rng stream id of the cross-shard merge evaluation ("merge" in ASCII).
// Far outside any plausible shard index, so the merge oracle's randomness
// never collides with a shard's stream.
constexpr uint64_t kMergeStream = 0x6d65726765ull;

}  // namespace

ShardRunner::ShardRunner(const Graph& train_graph, const Graph& eval_graph,
                         const PrivImConfig& config,
                         const ShardRunOptions& options)
    : train_graph_(&train_graph),
      eval_graph_(&eval_graph),
      cfg_(config),
      options_(options) {}

Result<ShardedRunResult> ShardRunner::Run(RunTelemetry* telemetry) {
  PRIVIM_RETURN_NOT_OK(cfg_.Validate());
  if (options_.num_shards == 0) {
    return Status::InvalidArgument("shard.num_shards must be >= 1, got 0");
  }

  ShardPlanOptions plan_options;
  plan_options.num_shards = options_.num_shards;
  plan_options.salt = options_.salt;
  PRIVIM_ASSIGN_OR_RETURN(ShardPlan train_plan,
                          ShardPlan::Partition(*train_graph_, plan_options));
  PRIVIM_ASSIGN_OR_RETURN(ShardPlan eval_plan,
                          ShardPlan::Partition(*eval_graph_, plan_options));
  for (size_t s = 0; s < options_.num_shards; ++s) {
    if (eval_plan.nodes(s).size() < cfg_.seed_count) {
      return Status::InvalidArgument(StrFormat(
          "shard %zu holds %zu evaluation nodes, fewer than seed_count "
          "k=%zu — lower shard.num_shards or k",
          s, eval_plan.nodes(s).size(), cfg_.seed_count));
    }
  }

  // Pre-grow the shared pool once, from this single thread: SharedPool(n)
  // joins and rebuilds the pool when it must grow, which must never happen
  // while concurrent shard stages are issuing ParallelFor on it.
  SharedPool(ResolveNumThreads(cfg_.runtime.num_threads));

  struct ShardState {
    PrivImConfig cfg;
    Rng rng{0};
    std::unique_ptr<MethodExecution> exec;
    RunTelemetry telemetry;  // Merged into the caller's in shard order.
    ShardOutcome outcome;
  };
  // unique_ptr elements: RunTelemetry holds a MetricsRegistry, which is
  // neither copyable nor movable.
  std::vector<std::unique_ptr<ShardState>> states;
  states.reserve(options_.num_shards);
  const bool want_telemetry = telemetry != nullptr;
  for (size_t s = 0; s < options_.num_shards; ++s) {
    auto state = std::make_unique<ShardState>();
    state->cfg = cfg_;
    if (cfg_.checkpoint.enabled()) {
      state->cfg.checkpoint.dir =
          cfg_.checkpoint.dir + "/shard" + std::to_string(s);
    }
    // The shard's whole run draws from one key-derived stream: a function
    // of (seed, shard id) alone, never of scheduling.
    state->rng = Rng::FromStreamKey(options_.seed, s);
    state->outcome.shard = s;
    states.push_back(std::move(state));
  }

  WallTimer wall;
  auto stage_a = [&](size_t s) -> Status {
    ShardState& state = *states[s];
    WallTimer timer;
    PRIVIM_ASSIGN_OR_RETURN(
        state.exec,
        MethodExecution::Create(train_plan.graph(s), eval_plan.graph(s),
                                state.cfg, state.rng,
                                want_telemetry ? &state.telemetry : nullptr));
    PRIVIM_RETURN_NOT_OK(state.exec->Extract());
    state.outcome.extract_seconds = timer.ElapsedSeconds();
    return Status::OK();
  };
  auto stage_b = [&](size_t s) -> Status {
    ShardState& state = *states[s];
    WallTimer timer;
    PRIVIM_ASSIGN_OR_RETURN(state.outcome.run, state.exec->Finish());
    state.exec.reset();
    state.outcome.seeds.reserve(state.outcome.run.seeds.size());
    for (NodeId local : state.outcome.run.seeds) {
      state.outcome.seeds.push_back(eval_plan.ToOriginal(s, local));
    }
    state.outcome.finish_seconds = timer.ElapsedSeconds();
    return Status::OK();
  };
  PRIVIM_RETURN_NOT_OK(RunStagePipeline(options_.num_shards,
                                        options_.overlap, stage_a, stage_b));

  ShardedRunResult out;
  out.wall_seconds = wall.ElapsedSeconds();
  for (const auto& state : states) {
    out.stage_seconds +=
        state->outcome.extract_seconds + state->outcome.finish_seconds;
  }

  std::vector<ShardSeedSet> contributions;
  contributions.reserve(options_.num_shards);
  for (const auto& state : states) {
    ShardSeedSet set;
    set.seeds = state->outcome.seeds;
    set.scores = state->outcome.run.seed_scores;
    contributions.push_back(std::move(set));
  }
  PRIVIM_ASSIGN_OR_RETURN(MergedSeedSet merged,
                          MergeSeedSets(contributions, cfg_.seed_count));
  out.seeds = std::move(merged.seeds);
  out.seed_scores = std::move(merged.scores);

  if (options_.num_shards == 1) {
    // Identity: the merged set IS shard 0's set, already scored on the
    // (identical) full eval graph — reuse it verbatim for bit-identity
    // with the serial pipeline.
    out.spread = states[0]->outcome.run.spread;
  } else {
    Rng merge_rng = Rng::FromStreamKey(options_.seed, kMergeStream);
    PRIVIM_ASSIGN_OR_RETURN(
        SpreadOracle oracle,
        MakeEvalOracle(*eval_graph_, cfg_, merge_rng,
                       want_telemetry ? &telemetry->metrics : nullptr));
    out.spread = oracle(out.seeds);
  }

  std::vector<double> spents;
  std::vector<std::vector<double>> ledgers;
  for (const auto& state : states) {
    spents.push_back(state->outcome.run.epsilon_spent);
    ledgers.push_back(state->outcome.run.epsilon_ledger);
  }
  MergedLedger composed = ComposeEpsilonLedgers(spents, ledgers);
  out.epsilon_spent = composed.epsilon_spent;
  out.epsilon_ledger = std::move(composed.ledger);

  out.train_cut_arcs = train_plan.cut_arcs();
  out.train_intra_arcs = train_plan.intra_arcs();
  out.eval_cut_arcs = eval_plan.cut_arcs();
  out.eval_intra_arcs = eval_plan.intra_arcs();

  if (want_telemetry) {
    // Deterministic merge order (shard id), independent of which shard
    // finished first.
    for (const auto& state : states) {
      telemetry->metrics.MergeFrom(state->telemetry.metrics);
      telemetry->train.insert(telemetry->train.end(),
                              state->telemetry.train.begin(),
                              state->telemetry.train.end());
    }
    TimerStat* extract_timer = telemetry->metrics.GetTimer("shard.extract");
    TimerStat* finish_timer = telemetry->metrics.GetTimer("shard.finish");
    for (const auto& state : states) {
      extract_timer->Add(
          1, static_cast<uint64_t>(state->outcome.extract_seconds * 1e9));
      finish_timer->Add(
          1, static_cast<uint64_t>(state->outcome.finish_seconds * 1e9));
    }
    telemetry->metrics.GetCounter("shard.train_cut_arcs")
        ->Add(out.train_cut_arcs);
    telemetry->metrics.GetCounter("shard.eval_cut_arcs")
        ->Add(out.eval_cut_arcs);
    telemetry->metrics.GetGauge("shard.count")
        ->Set(static_cast<double>(options_.num_shards));
    telemetry->metrics.GetGauge("shard.wall_seconds")->Set(out.wall_seconds);
    telemetry->metrics.GetGauge("shard.stage_seconds")
        ->Set(out.stage_seconds);
  }

  out.shards.reserve(states.size());
  for (auto& state : states) {
    out.shards.push_back(std::move(state->outcome));
  }
  return out;
}

}  // namespace privim
