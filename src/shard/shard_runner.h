#ifndef PRIVIM_SHARD_SHARD_RUNNER_H_
#define PRIVIM_SHARD_SHARD_RUNNER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/privim.h"
#include "obs/telemetry.h"
#include "shard/overlap.h"
#include "shard/shard_plan.h"

namespace privim {

/// Configuration of a sharded run, layered on top of the method's own
/// PrivImConfig.
struct ShardRunOptions {
  /// Node-disjoint partitions (>= 1). 1 runs the full partition -> run ->
  /// merge machinery and is bit-identical to the serial RunMethod path.
  size_t num_shards = 1;
  /// Base RNG key: shard s draws its entire stream from
  /// Rng::FromStreamKey(seed, s), so per-shard randomness is a function of
  /// (seed, shard id) alone — independent of scheduling, thread count, and
  /// shard completion order.
  uint64_t seed = 42;
  uint64_t salt = kDefaultShardSalt;
  OverlapOptions overlap;
};

/// One shard's outcome, kept for diagnostics and the overlap-timing proof.
struct ShardOutcome {
  size_t shard = 0;
  /// The shard-local run result (seeds in shard-LOCAL eval ids).
  PrivImRunResult run;
  /// The shard's seeds translated to original eval-graph ids.
  std::vector<NodeId> seeds;
  /// Wall seconds of the two pipeline stages (extract = Module 1 sampling,
  /// finish = calibrate + train + select + evaluate).
  double extract_seconds = 0.0;
  double finish_seconds = 0.0;
};

struct ShardedRunResult {
  /// Globally merged top-k seed set (original eval-graph ids) and the GNN
  /// logits that ranked them.
  std::vector<NodeId> seeds;
  std::vector<double> seed_scores;
  /// Spread of the merged set on the FULL evaluation graph. At one shard
  /// this is the shard's own spread verbatim (bit-identity); at >= 2 it is
  /// re-evaluated with the configured eval oracle.
  double spread = 0.0;
  /// Parallel composition across node-disjoint shards: max per-shard spend
  /// and entrywise-max ledger (shard_merger.h).
  double epsilon_spent = 0.0;
  std::vector<double> epsilon_ledger;
  /// Cut accounting from the two partitions (arcs dropped entirely).
  uint64_t train_cut_arcs = 0;
  uint64_t train_intra_arcs = 0;
  uint64_t eval_cut_arcs = 0;
  uint64_t eval_intra_arcs = 0;
  /// End-to-end wall seconds of the stage pipeline, and the sum of all
  /// per-shard stage times (what a fully serialized schedule would cost) —
  /// their ratio is the overlap saving BENCH_shard.json reports.
  double wall_seconds = 0.0;
  double stage_seconds = 0.0;
  std::vector<ShardOutcome> shards;
};

/// Shared-nothing sharded pipeline: partitions train and eval graphs with
/// one ShardPlan salt, runs the full PrivIM method per shard (its own
/// graphs, its own Rng stream, its own checkpoint subdirectory
/// `<dir>/shard<i>`), overlapping shard k+1's sampling with shard k's
/// training (overlap.h), then merges per-shard seed sets and privacy
/// ledgers into one global result (shard_merger.h). docs/sharding.md
/// documents the semantics; tests/shard/ pins determinism and the
/// shards=1 serial bit-identity.
class ShardRunner {
 public:
  /// Graphs are borrowed and must outlive Run(). The method config is
  /// copied; its checkpoint.dir (when set) becomes the parent of the
  /// per-shard snapshot subdirectories, and checkpoint.resume resumes
  /// every shard independently from whatever stage its snapshots reached.
  ShardRunner(const Graph& train_graph, const Graph& eval_graph,
              const PrivImConfig& config, const ShardRunOptions& options);

  /// Runs the sharded pipeline. With `telemetry`, per-shard metrics merge
  /// into it in shard-id order (deterministic regardless of completion
  /// order) along with shard.* instruments: "shard.extract" /
  /// "shard.finish" timers, cut-arc counters, and wall/stage gauges.
  Result<ShardedRunResult> Run(RunTelemetry* telemetry = nullptr);

 private:
  const Graph* train_graph_;
  const Graph* eval_graph_;
  PrivImConfig cfg_;
  ShardRunOptions options_;
};

}  // namespace privim

#endif  // PRIVIM_SHARD_SHARD_RUNNER_H_
