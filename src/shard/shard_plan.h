#ifndef PRIVIM_SHARD_SHARD_PLAN_H_
#define PRIVIM_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace privim {

/// Default mixing salt for shard assignment. Train and eval graphs of one
/// run must be partitioned with the SAME salt so a node's shard is a
/// property of its id, not of which split it sits in.
inline constexpr uint64_t kDefaultShardSalt = 0x5eed5a17u;

struct ShardPlanOptions {
  /// Number of node-disjoint partitions. Must satisfy
  /// 1 <= num_shards <= num_nodes.
  size_t num_shards = 1;
  uint64_t salt = kDefaultShardSalt;
};

/// Deterministic shared-nothing partition of a Graph: every node is owned
/// by exactly one shard (SplitMix64 hash of its id — stable across runs,
/// platforms, and thread counts), each shard materializes the subgraph
/// induced by its nodes as an independent in-CSR `Graph` with local ids,
/// and arcs crossing shards ("cut arcs") are counted but dropped entirely
/// — no shard ever observes them, so they contribute nothing to any
/// shard's DP mechanism (docs/sharding.md, "Cut edges and privacy").
///
/// Local ids preserve original order: nodes(s) is ascending, and local id
/// i within shard s is original id nodes(s)[i]. With num_shards = 1 the
/// partition is the identity — shard 0's graph has the same nodes, arcs,
/// and weights as the input (the basis of the shards=1 bit-identity
/// contract, tested in tests/shard/merge_determinism_test.cc).
class ShardPlan {
 public:
  /// Pure function of (node id, salt, num_shards): which shard owns `u`.
  static size_t AssignShard(NodeId u, uint64_t salt, size_t num_shards);

  /// Partitions `g`. Streams each shard's arcs through
  /// GraphBuilder::AddEdgeStream (no materialized edge lists) and builds
  /// every shard graph eagerly in-CSR: shard graphs are consumed from
  /// concurrent shard tasks, and a lazy Graph::EnsureInCsr() there would
  /// be a data race (tests/shard/shard_pipeline_test.cc pins this).
  static Result<ShardPlan> Partition(const Graph& g,
                                     const ShardPlanOptions& options);

  size_t num_shards() const { return shards_.size(); }

  /// Shard s's induced subgraph over local ids [0, nodes(s).size()).
  const Graph& graph(size_t s) const { return shards_[s].graph; }

  /// Local -> original id map of shard s (ascending original ids).
  const std::vector<NodeId>& nodes(size_t s) const {
    return shards_[s].nodes;
  }

  /// Which shard owns original node `u`.
  size_t ShardOf(NodeId u) const {
    return AssignShard(u, salt_, shards_.size());
  }

  /// Original id of shard s's local node `local`.
  NodeId ToOriginal(size_t s, NodeId local) const {
    return shards_[s].nodes[local];
  }

  /// Arcs of the input whose endpoints fall in different shards (dropped)
  /// / in the same shard (kept). cut_arcs + intra_arcs == input arc count.
  uint64_t cut_arcs() const { return cut_arcs_; }
  uint64_t intra_arcs() const { return intra_arcs_; }

 private:
  struct ShardPart {
    Graph graph;
    std::vector<NodeId> nodes;
  };

  std::vector<ShardPart> shards_;
  uint64_t salt_ = kDefaultShardSalt;
  uint64_t cut_arcs_ = 0;
  uint64_t intra_arcs_ = 0;
};

}  // namespace privim

#endif  // PRIVIM_SHARD_SHARD_PLAN_H_
