#ifndef PRIVIM_SHARD_PIPELINE_H_
#define PRIVIM_SHARD_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/privim.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "shard/shard_runner.h"

namespace privim {

/// How a Pipeline executes the method: serially (one RunMethod over the
/// whole graphs) or sharded (ShardRunner over node-disjoint partitions).
struct PipelineShardOptions {
  /// 0 = serial RunMethod path, no partitioning (the default).
  /// n >= 1 = sharded runner over n partitions; 1 still goes through the
  /// full partition -> run -> merge machinery and is bit-identical to the
  /// serial path (tested).
  size_t num_shards = 0;
  OverlapOptions overlap;
  uint64_t salt = kDefaultShardSalt;
};

/// Everything a Pipeline needs beyond its graphs.
struct PipelineConfig {
  /// The method configuration (PrivImConfig.checkpoint governs snapshots;
  /// leave checkpoint.resume false — Pipeline::Resume() sets it).
  PrivImConfig method;
  PipelineShardOptions shard;
  /// Base RNG key. The serial path runs on Rng::FromStreamKey(seed, 0) —
  /// the same stream sharded shard 0 uses, which is what makes
  /// shards=1 and serial bit-identical.
  uint64_t seed = 42;
  /// Collect per-run telemetry into Telemetry() (pure observation:
  /// results are bit-identical either way).
  bool collect_telemetry = false;
};

/// Outcome of Pipeline::Run()/Resume(): a stable headline (seeds, spread,
/// privacy spend) plus the path-specific detail.
struct PipelineRunResult {
  std::vector<NodeId> seeds;
  std::vector<double> seed_scores;
  double spread = 0.0;
  double epsilon_spent = 0.0;
  std::vector<double> epsilon_ledger;
  /// True when the sharded runner executed (shard.num_shards >= 1).
  bool sharded = false;
  /// Serial-path detail (default-constructed when sharded).
  PrivImRunResult run;
  /// Sharded-path detail (default-constructed when serial).
  ShardedRunResult sharded_run;
  /// The trained model — serial path only (the sharded path trains one
  /// model per shard and does not export them).
  std::unique_ptr<GnnModel> model;
};

/// The stable facade every driver constructs the PrivIM pipeline through
/// (docs/api.md, "Stable entry points"): one Build call owning the graphs,
/// one Run/Resume call executing the configured path, one Telemetry()
/// accessor. privim_cli uses the serial path, privim_shard the sharded
/// path, privim_serve BuildForServing; none of them reach around the
/// facade into RunMethod/ShardRunner directly.
///
/// Build eagerly materializes the in-CSR of every owned graph (in-degree
/// features need it, and Graph::EnsureInCsr() is NOT thread-safe — doing
/// it here, single-threaded, is what makes handing the graphs to
/// concurrent shard tasks safe; tests/shard/shard_pipeline_test.cc pins
/// this).
class Pipeline {
 public:
  /// Validates `config.method`, takes ownership of the graphs, and
  /// materializes both in-CSRs. The returned Pipeline is self-contained
  /// and movable.
  static Result<Pipeline> Build(Graph train_graph, Graph eval_graph,
                                PipelineConfig config);

  /// Serving-mode Build: owns the single resident graph privim_serve's
  /// Server answers queries over (in-CSR materialized here, before the
  /// server's worker threads exist). Run()/Resume() on a serving pipeline
  /// return FailedPrecondition.
  static Result<Pipeline> BuildForServing(Graph graph);

  /// Executes the configured path (serial or sharded) from scratch.
  Result<PipelineRunResult> Run();

  /// Re-executes with checkpoint resume: continues from the snapshots in
  /// method.checkpoint.dir (per-shard subdirectories when sharded), with
  /// bit-identical results to an uninterrupted Run(). FailedPrecondition
  /// when no checkpoint directory is configured.
  Result<PipelineRunResult> Resume();

  /// Telemetry of the most recent Run()/Resume() (empty until one
  /// completes, or when collect_telemetry is off).
  const RunTelemetry& Telemetry() const { return *telemetry_; }

  const PipelineConfig& config() const { return config_; }
  const Graph& train_graph() const { return train_graph_; }
  const Graph& eval_graph() const { return eval_graph_; }
  /// Serving mode: the resident graph (an alias of eval_graph()).
  const Graph& graph() const { return eval_graph_; }

  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

 private:
  Pipeline(Graph train_graph, Graph eval_graph, PipelineConfig config,
           bool serving_only);

  Result<PipelineRunResult> Execute(bool resume);

  Graph train_graph_;
  Graph eval_graph_;
  PipelineConfig config_;
  bool serving_only_ = false;
  // unique_ptr: MetricsRegistry is not movable, Pipeline is.
  std::unique_ptr<RunTelemetry> telemetry_;
};

}  // namespace privim

#endif  // PRIVIM_SHARD_PIPELINE_H_
