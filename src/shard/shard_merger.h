#ifndef PRIVIM_SHARD_SHARD_MERGER_H_
#define PRIVIM_SHARD_SHARD_MERGER_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace privim {

/// One shard's contribution to the global seed merge: its selected seeds
/// translated back to ORIGINAL eval-graph ids, with the GNN logit of each
/// (PrivImRunResult::seed_scores). Scores are DP post-processing of the
/// shard's trained model, so ranking on them costs no extra budget.
struct ShardSeedSet {
  std::vector<NodeId> seeds;
  std::vector<double> scores;  // Aligned with `seeds`.
};

struct MergedSeedSet {
  std::vector<NodeId> seeds;
  std::vector<double> scores;
};

/// Global top-k across per-shard seed sets.
///
/// With a single shard the merge is the identity (the shard's own
/// TopKByScore order passes through verbatim) — this is what keeps
/// shards=1 bit-identical to the serial pipeline even when scores tie.
/// With multiple shards, candidates rank by (score desc, node id asc):
/// the same direction GreedySelect/CelfSelect break equal-gain ties
/// (smaller id wins), so the cross-shard rule stays tie-break-compatible
/// with the selection algorithms (tested in tests/shard/).
///
/// Errors: InvalidArgument on seed/score length mismatch, on duplicate
/// node ids across shards (partitions must be disjoint), and when the
/// shards contribute fewer than k candidates in total.
Result<MergedSeedSet> MergeSeedSets(const std::vector<ShardSeedSet>& shards,
                                    size_t k);

/// Composition of per-shard RDP ledgers into the run's global ledger.
struct MergedLedger {
  double epsilon_spent = 0.0;
  /// Cumulative epsilon after each iteration; empty when every shard ran
  /// non-private.
  std::vector<double> ledger;
};

/// Parallel composition over node-disjoint shards: each node's data enters
/// exactly one shard's mechanism, so the composed guarantee at every
/// iteration prefix is the WORST (max) per-shard epsilon, not the sum.
/// Ledgers are composed entrywise; a shard whose ledger is shorter (it
/// finished earlier) contributes its final value to the remaining entries
/// (cumulative epsilon never decreases). See docs/sharding.md.
MergedLedger ComposeEpsilonLedgers(
    const std::vector<double>& epsilon_spent,
    const std::vector<std::vector<double>>& ledgers);

}  // namespace privim

#endif  // PRIVIM_SHARD_SHARD_MERGER_H_
