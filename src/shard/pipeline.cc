#include "shard/pipeline.h"

#include <utility>

namespace privim {

Pipeline::Pipeline(Graph train_graph, Graph eval_graph,
                   PipelineConfig config, bool serving_only)
    : train_graph_(std::move(train_graph)),
      eval_graph_(std::move(eval_graph)),
      config_(std::move(config)),
      serving_only_(serving_only),
      telemetry_(std::make_unique<RunTelemetry>()) {}

Result<Pipeline> Pipeline::Build(Graph train_graph, Graph eval_graph,
                                 PipelineConfig config) {
  PRIVIM_RETURN_NOT_OK(config.method.Validate());
  if (config.shard.num_shards > 0 &&
      config.shard.overlap.max_in_flight == 0) {
    return Status::InvalidArgument(
        "shard.overlap.max_in_flight must be >= 1, got 0");
  }
  // Materialize both in-CSRs now, on this one thread. In-degree features
  // (BuildNodeFeatures) require the in-CSR, and EnsureInCsr() is not
  // thread-safe — lazy materialization from concurrent shard tasks was a
  // data race.
  PRIVIM_RETURN_NOT_OK(train_graph.EnsureInCsr());
  PRIVIM_RETURN_NOT_OK(eval_graph.EnsureInCsr());
  return Pipeline(std::move(train_graph), std::move(eval_graph),
                  std::move(config), /*serving_only=*/false);
}

Result<Pipeline> Pipeline::BuildForServing(Graph graph) {
  // Same eager-in-CSR contract: the server's worker threads must never be
  // the first to need the in-adjacency.
  PRIVIM_RETURN_NOT_OK(graph.EnsureInCsr());
  Graph empty_train;
  return Pipeline(std::move(empty_train), std::move(graph),
                  PipelineConfig{}, /*serving_only=*/true);
}

Result<PipelineRunResult> Pipeline::Run() { return Execute(false); }

Result<PipelineRunResult> Pipeline::Resume() { return Execute(true); }

Result<PipelineRunResult> Pipeline::Execute(bool resume) {
  if (serving_only_) {
    return Status::FailedPrecondition(
        "this Pipeline was built for serving (BuildForServing): it owns "
        "the resident graph but has no train/eval split to run");
  }
  PrivImConfig method = config_.method;
  if (resume) {
    if (!method.checkpoint.enabled()) {
      return Status::FailedPrecondition(
          "Pipeline::Resume() requires method.checkpoint.dir to be set");
    }
    method.checkpoint.resume = true;
  }
  // Fresh telemetry per execution so repeated Run() calls do not
  // accumulate.
  telemetry_ = std::make_unique<RunTelemetry>();
  RunTelemetry* telemetry =
      config_.collect_telemetry ? telemetry_.get() : nullptr;

  PipelineRunResult out;
  if (config_.shard.num_shards == 0) {
    // Stream 0 — the same stream the sharded runner hands shard 0, which
    // is what makes shards=1 bit-identical to this path.
    Rng rng = Rng::FromStreamKey(config_.seed, 0);
    PRIVIM_ASSIGN_OR_RETURN(
        out.run, RunMethod(train_graph_, eval_graph_, method, rng,
                           &out.model, telemetry));
    out.seeds = out.run.seeds;
    out.seed_scores = out.run.seed_scores;
    out.spread = out.run.spread;
    out.epsilon_spent = out.run.epsilon_spent;
    out.epsilon_ledger = out.run.epsilon_ledger;
    out.sharded = false;
  } else {
    ShardRunOptions shard_options;
    shard_options.num_shards = config_.shard.num_shards;
    shard_options.seed = config_.seed;
    shard_options.salt = config_.shard.salt;
    shard_options.overlap = config_.shard.overlap;
    ShardRunner runner(train_graph_, eval_graph_, method, shard_options);
    PRIVIM_ASSIGN_OR_RETURN(out.sharded_run, runner.Run(telemetry));
    out.seeds = out.sharded_run.seeds;
    out.seed_scores = out.sharded_run.seed_scores;
    out.spread = out.sharded_run.spread;
    out.epsilon_spent = out.sharded_run.epsilon_spent;
    out.epsilon_ledger = out.sharded_run.epsilon_ledger;
    out.sharded = true;
  }
  return out;
}

}  // namespace privim
