#include "shard/shard_plan.h"

#include <span>

#include "common/rng.h"
#include "common/string_util.h"

namespace privim {

size_t ShardPlan::AssignShard(NodeId u, uint64_t salt, size_t num_shards) {
  if (num_shards <= 1) return 0;
  // One SplitMix64 step fully mixes (salt, id); the modulo bias over
  // num_shards <= 2^32 partitions of a 64-bit hash is negligible and,
  // crucially, identical everywhere.
  SplitMix64 mix(salt ^ (0x9e3779b97f4a7c15ull * (uint64_t{u} + 1)));
  return static_cast<size_t>(mix.Next() % num_shards);
}

Result<ShardPlan> ShardPlan::Partition(const Graph& g,
                                       const ShardPlanOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("shard.num_shards must be >= 1, got 0");
  }
  if (options.num_shards > g.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("shard.num_shards (%zu) exceeds the graph's %zu nodes",
                  options.num_shards, g.num_nodes()));
  }

  ShardPlan plan;
  plan.salt_ = options.salt;
  plan.shards_.resize(options.num_shards);

  // Assignment pass: owner shard and local id of every node. Local ids
  // count up in original-id order, so nodes(s) comes out ascending.
  std::vector<uint32_t> shard_of(g.num_nodes());
  std::vector<NodeId> local_id(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const size_t s = AssignShard(u, options.salt, options.num_shards);
    shard_of[u] = static_cast<uint32_t>(s);
    local_id[u] = static_cast<NodeId>(plan.shards_[s].nodes.size());
    plan.shards_[s].nodes.push_back(u);
  }

  // Cut accounting in one pre-pass, outside the edge streams: Build()
  // replays each stream twice (count + place), so a counter inside the
  // stream would double.
  PRIVIM_RETURN_NOT_OK(g.ForEachEdge([&](NodeId u, NodeId v, float) {
    if (shard_of[u] == shard_of[v]) {
      ++plan.intra_arcs_;
    } else {
      ++plan.cut_arcs_;
    }
  }));

  for (size_t s = 0; s < options.num_shards; ++s) {
    ShardPart& part = plan.shards_[s];
    GraphBuilder builder(part.nodes.size());
    const std::vector<NodeId>* nodes = &part.nodes;
    const uint32_t shard_tag = static_cast<uint32_t>(s);
    PRIVIM_RETURN_NOT_OK(builder.AddEdgeStream(
        [&g, nodes, &shard_of, &local_id, shard_tag](EdgeSink& sink) {
          for (NodeId u : *nodes) {
            const std::span<const NodeId> nbrs = g.OutNeighbors(u);
            const std::span<const float> weights = g.OutWeights(u);
            for (size_t i = 0; i < nbrs.size(); ++i) {
              const NodeId v = nbrs[i];
              if (shard_of[v] != shard_tag) continue;
              PRIVIM_RETURN_NOT_OK(
                  sink.Add(local_id[u], local_id[v], weights[i]));
            }
          }
          return Status::OK();
        }));
    GraphBuildOptions build_options;
    // Eager in-CSR: shard graphs cross thread boundaries immediately and
    // EnsureInCsr() is not thread-safe (the satellite invariant).
    build_options.build_in_csr = true;
    PRIVIM_ASSIGN_OR_RETURN(part.graph, builder.Build(build_options));
  }

  return plan;
}

}  // namespace privim
