#include "shard/shard_merger.h"

#include <algorithm>

#include "common/string_util.h"

namespace privim {

Result<MergedSeedSet> MergeSeedSets(const std::vector<ShardSeedSet>& shards,
                                    size_t k) {
  if (k == 0) return Status::InvalidArgument("seed budget k must be > 0");
  for (size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].seeds.size() != shards[s].scores.size()) {
      return Status::InvalidArgument(StrFormat(
          "shards[%zu]: %zu seeds but %zu scores", s, shards[s].seeds.size(),
          shards[s].scores.size()));
    }
  }

  MergedSeedSet out;
  if (shards.size() == 1) {
    // Identity merge: preserve the shard's own selection order verbatim so
    // shards=1 stays bit-identical to the serial pipeline even when
    // scores tie (TopKByScore's order within a tie depends on its shuffled
    // candidate order, which a re-sort here could not reproduce).
    const ShardSeedSet& only = shards[0];
    if (only.seeds.size() < k) {
      return Status::InvalidArgument(
          StrFormat("need k=%zu seeds, shard contributed %zu", k,
                    only.seeds.size()));
    }
    out.seeds.assign(only.seeds.begin(), only.seeds.begin() + k);
    out.scores.assign(only.scores.begin(), only.scores.begin() + k);
    return out;
  }

  struct Candidate {
    NodeId node;
    double score;
  };
  std::vector<Candidate> all;
  for (const ShardSeedSet& shard : shards) {
    for (size_t i = 0; i < shard.seeds.size(); ++i) {
      all.push_back(Candidate{shard.seeds[i], shard.scores[i]});
    }
  }
  if (all.size() < k) {
    return Status::InvalidArgument(
        StrFormat("need k=%zu seeds, %zu shards contributed %zu total", k,
                  shards.size(), all.size()));
  }

  // (score desc, id asc) — deterministic regardless of shard completion
  // order, and tie-break-compatible with GreedySelect (smaller id wins).
  std::sort(all.begin(), all.end(), [](const Candidate& a,
                                       const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i].node == all[i - 1].node) {
      return Status::InvalidArgument(StrFormat(
          "node %u contributed by more than one shard: partitions must be "
          "node-disjoint",
          all[i].node));
    }
  }

  out.seeds.reserve(k);
  out.scores.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.seeds.push_back(all[i].node);
    out.scores.push_back(all[i].score);
  }
  return out;
}

MergedLedger ComposeEpsilonLedgers(
    const std::vector<double>& epsilon_spent,
    const std::vector<std::vector<double>>& ledgers) {
  MergedLedger out;
  for (double e : epsilon_spent) out.epsilon_spent = std::max(out.epsilon_spent, e);
  size_t max_len = 0;
  for (const std::vector<double>& l : ledgers) {
    max_len = std::max(max_len, l.size());
  }
  out.ledger.assign(max_len, 0.0);
  for (const std::vector<double>& l : ledgers) {
    if (l.empty()) continue;  // Non-private shard: spends nothing.
    for (size_t i = 0; i < max_len; ++i) {
      const double v = i < l.size() ? l[i] : l.back();
      out.ledger[i] = std::max(out.ledger[i], v);
    }
  }
  return out;
}

}  // namespace privim
