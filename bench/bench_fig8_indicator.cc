// Reproduces Figure 8 (and Figure 12's extra datasets): theoretical values
// of the Gamma indicator I(n, M) next to the empirical influence spread of
// PrivIM* at epsilon = 3. The paper's claim: the indicator's peak aligns
// with the empirically best M (given n) and n (given M).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/indicator.h"

namespace privim {
namespace {

void RunDataset(DatasetId id, double eps, size_t repeats, double scale) {
  DatasetInstance instance = bench::DieOnError(
      PrepareDataset(id, /*seed=*/5000, 50, 1, scale), "PrepareDataset");
  const DatasetSpec& spec = instance.spec;
  // Indicator parameters are tied to the paper-scale |V| (Eq. 12 was fitted
  // on the real dataset sizes).
  const size_t v_paper = spec.paper_nodes;
  IndicatorParams params;  // Paper's fitted defaults.

  const std::vector<size_t> m_grid = {2, 4, 6, 8, 10};
  for (size_t n : {40u, 60u}) {
    std::cout << "--- " << spec.name << ", n=" << n << ", eps=" << eps
              << " ---\n";
    TablePrinter table({"M", "indicator I(n,M)", "empirical spread"});
    std::vector<double> n_axis = {static_cast<double>(n)};
    std::vector<double> m_axis;
    for (size_t m : m_grid) m_axis.push_back(static_cast<double>(m));
    const auto surface = IndicatorSurface(n_axis, m_axis, v_paper, params);

    double best_ind = -1.0, best_ind_m = 0.0;
    double best_emp = -1.0, best_emp_m = 0.0;
    for (size_t j = 0; j < m_grid.size(); ++j) {
      PrivImConfig cfg = MakeDefaultConfig(
          Method::kPrivImStar, eps, instance.train_graph.num_nodes());
      cfg.freq.subgraph_size = n;
      cfg.freq.frequency_threshold = m_grid[j];
      MethodEval eval = bench::DieOnError(
          EvaluateMethod(instance, cfg, repeats, /*seed=*/71),
          StrFormat("M=%zu", m_grid[j]));
      table.AddRow(StrFormat("%zu", m_grid[j]),
                   {surface[0][j], eval.mean_spread}, 3);
      if (surface[0][j] > best_ind) {
        best_ind = surface[0][j];
        best_ind_m = m_axis[j];
      }
      if (eval.mean_spread > best_emp) {
        best_emp = eval.mean_spread;
        best_emp_m = m_axis[j];
      }
    }
    table.Print(std::cout);
    std::cout << "indicator peak at M=" << best_ind_m
              << ", empirical peak at M=" << best_emp_m << "\n\n";
  }
}

void Run() {
  const size_t repeats = RepeatsFromEnv(2);
  PrintBenchHeader("Figures 8 & 12: Gamma indicator vs empirical results (eps=3)", repeats);
    const double scale = ScaleFromEnv();
  for (DatasetId id : {DatasetId::kLastFm, DatasetId::kFacebook,
                       DatasetId::kGowalla}) {
    RunDataset(id, 3.0, repeats, scale);
  }
  std::cout << "Expected shape (paper): the indicator curve tracks the "
               "empirical unimodal trend,\nwith coinciding peaks.\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
