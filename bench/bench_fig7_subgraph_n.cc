// Reproduces Figure 7 (Facebook, Gowalla) and Figure 11 (remaining
// datasets): impact of the subgraph size n on PrivIM* at epsilon = 3.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace privim {
namespace {

void Run() {
  const size_t repeats = RepeatsFromEnv(2);
  PrintBenchHeader("Figures 7 & 11: Impact of subgraph size n on PrivIM* (eps=3)", repeats);
    const double scale = ScaleFromEnv();
  const std::vector<size_t> n_grid = {10, 20, 30, 40, 50, 60, 70, 80};

  std::vector<std::string> headers = {"Dataset"};
  for (size_t n : n_grid) headers.push_back(StrFormat("n=%zu", n));
  TablePrinter table(headers);

  for (const DatasetSpec& spec : MainDatasetSpecs()) {
    DatasetInstance instance = bench::DieOnError(
        PrepareDataset(spec.id, /*seed=*/4000, 50, 1, scale),
        "PrepareDataset " + spec.name);
    std::vector<double> row;
    for (size_t n : n_grid) {
      PrivImConfig cfg = MakeDefaultConfig(
          Method::kPrivImStar, 3.0, instance.train_graph.num_nodes());
      cfg.freq.subgraph_size = n;
      MethodEval eval = bench::DieOnError(
          EvaluateMethod(instance, cfg, repeats, /*seed=*/67),
          StrFormat("%s n=%zu", spec.name.c_str(), n));
      row.push_back(eval.mean_spread);
    }
    table.AddRow(spec.name, row, 1);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): spread rises with n to a peak and "
               "then drops (fewer, larger\nsubgraphs hurt generalization); "
               "on the largest dataset it keeps growing within range.\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
