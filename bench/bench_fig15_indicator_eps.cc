// Reproduces Figure 15 (Appendix K): indicator vs empirical results on
// LastFM under different privacy budgets (epsilon = 1 and epsilon = 6),
// showing the indicator's trend is budget-independent.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/indicator.h"

namespace privim {
namespace {

void Run() {
  const size_t repeats = RepeatsFromEnv(2);
  PrintBenchHeader("Figure 15: Indicator vs empirical results on LastFM (eps=1, 6)", repeats);
    const double scale = ScaleFromEnv();

  DatasetInstance instance = bench::DieOnError(
      PrepareDataset(DatasetId::kLastFm, /*seed=*/10000, 50, 1, scale),
      "PrepareDataset LastFM");
  IndicatorParams params;
  const size_t v_paper = instance.spec.paper_nodes;
  const std::vector<size_t> m_grid = {2, 4, 6, 8, 10};
  const size_t n = 60;

  std::vector<double> m_axis;
  for (size_t m : m_grid) m_axis.push_back(static_cast<double>(m));
  const auto surface = IndicatorSurface({static_cast<double>(n)}, m_axis,
                                        v_paper, params);

  for (double eps : {1.0, 6.0}) {
    std::cout << "--- eps=" << eps << ", n=" << n << " ---\n";
    TablePrinter table({"M", "indicator I(n,M)", "empirical spread"});
    double best_ind = -1.0, best_ind_m = 0.0;
    double best_emp = -1.0, best_emp_m = 0.0;
    for (size_t j = 0; j < m_grid.size(); ++j) {
      PrivImConfig cfg = MakeDefaultConfig(
          Method::kPrivImStar, eps, instance.train_graph.num_nodes());
      cfg.freq.subgraph_size = n;
      cfg.freq.frequency_threshold = m_grid[j];
      MethodEval eval = bench::DieOnError(
          EvaluateMethod(instance, cfg, repeats, /*seed=*/101),
          StrFormat("eps=%.0f M=%zu", eps, m_grid[j]));
      table.AddRow(StrFormat("%zu", m_grid[j]),
                   {surface[0][j], eval.mean_spread}, 3);
      if (surface[0][j] > best_ind) {
        best_ind = surface[0][j];
        best_ind_m = m_axis[j];
      }
      if (eval.mean_spread > best_emp) {
        best_emp = eval.mean_spread;
        best_emp_m = m_axis[j];
      }
    }
    table.Print(std::cout);
    std::cout << "indicator peak at M=" << best_ind_m
              << ", empirical peak at M=" << best_emp_m << "\n\n";
  }
  std::cout << "Expected shape (paper): the indicator captures the same "
               "trend under both budgets.\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
