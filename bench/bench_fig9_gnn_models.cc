// Reproduces Figure 9: coverage ratio of PrivIM* with five GNN backbones
// (GRAT, GAT, GCN, GraphSAGE, GIN) over the six main datasets, at epsilon
// in {2, 5}.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace privim {
namespace {

const std::vector<GnnType> kModels = {GnnType::kGrat, GnnType::kGat,
                                      GnnType::kGcn, GnnType::kSage,
                                      GnnType::kGin};

void Run() {
  const size_t repeats = RepeatsFromEnv(3);
  PrintBenchHeader("Figure 9: PrivIM* with different GNN backbones", repeats);
    const double scale = ScaleFromEnv();

  for (double eps : {2.0, 5.0}) {
    std::cout << "--- coverage ratio (%), eps=" << eps << " ---\n";
    std::vector<std::string> headers = {"Model"};
    for (const DatasetSpec& spec : MainDatasetSpecs()) {
      headers.push_back(spec.name);
    }
    TablePrinter table(headers);

    // Prepare instances once per epsilon block.
    std::vector<DatasetInstance> instances;
    for (const DatasetSpec& spec : MainDatasetSpecs()) {
      instances.push_back(bench::DieOnError(
          PrepareDataset(spec.id, /*seed=*/6000, 50, 1, scale),
          "PrepareDataset " + spec.name));
    }
    for (GnnType model : kModels) {
      std::vector<double> row;
      for (const DatasetInstance& instance : instances) {
        PrivImConfig cfg = MakeDefaultConfig(
            Method::kPrivImStar, eps, instance.train_graph.num_nodes());
        cfg.gnn.type = model;
        MethodEval eval = bench::DieOnError(
            EvaluateMethod(instance, cfg, repeats, /*seed=*/73),
            GnnTypeName(model) + " on " + instance.spec.name);
        row.push_back(eval.mean_coverage);
      }
      table.AddRow(GnnTypeName(model), row, 2);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape (paper): GRAT marginally best (source-side "
               "attention reduces overlapping\ncoverage); GCN > GraphSAGE; "
               "GIN less stable across datasets.\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
