// Dynamic-graph streaming benchmark (docs/streaming.md): replays a
// synthetic update stream through the StreamPipeline over a grid of
// update rate x retrain cadence and writes one JSON row per cell to
// BENCH_stream.json with
//
//   updates_per_batch,         the grid cell: events per batch and the
//   retrain_every              staleness trigger (batches per retrain)
//   batches                    stream length
//   retrains                   training rounds fired during the stream
//                              (round 0 excluded — it is not stream cost)
//   batch_seconds_p50          median per-batch wall time (apply + repair
//                              + invalidate + utility; retrain batches
//                              included)
//   repaired_sets_per_batch    mean RR sets regenerated per batch — the
//                              O(ball) locality headline
//   final_utility              deterministic spread of the released seeds
//                              on the final graph
//   final_epsilon              cumulative continual-observation epsilon
//                              after the last batch (monotone in
//                              retrains; the utility-vs-epsilon
//                              trade-off's x-axis)
//
// Environment:
//   BENCH_STREAM_OUT      output path (default BENCH_stream.json)
//   BENCH_STREAM_SCALE    dataset scale multiplier (default 1.0)
//   BENCH_STREAM_BATCHES  batches per cell (default 12)

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/privim.h"
#include "graph/datasets.h"
#include "stream/stream_pipeline.h"

namespace privim {
namespace {

constexpr uint64_t kSeed = 42;

struct Row {
  size_t updates_per_batch = 0;
  size_t retrain_every = 0;
  size_t batches = 0;
  size_t retrains = 0;
  double batch_seconds_p50 = 0;
  double repaired_sets_per_batch = 0;
  double final_utility = 0;
  double final_epsilon = 0;
};

std::string RowJson(const Row& r) {
  return StrFormat(
      "    {\"updates_per_batch\": %zu, \"retrain_every\": %zu, "
      "\"batches\": %zu, \"retrains\": %zu, "
      "\"batch_seconds_p50\": %.4f, \"repaired_sets_per_batch\": %.1f, "
      "\"final_utility\": %.2f, \"final_epsilon\": %.4f}",
      r.updates_per_batch, r.retrain_every, r.batches, r.retrains,
      r.batch_seconds_p50, r.repaired_sets_per_batch, r.final_utility,
      r.final_epsilon);
}

int RunAll() {
  const char* out_env = std::getenv("BENCH_STREAM_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_stream.json";
  const char* scale_env = std::getenv("BENCH_STREAM_SCALE");
  const double scale = scale_env != nullptr ? std::atof(scale_env) : 1.0;
  const char* batches_env = std::getenv("BENCH_STREAM_BATCHES");
  const size_t batches =
      batches_env != nullptr
          ? static_cast<size_t>(std::atoll(batches_env))
          : 12;

  std::vector<std::string> rows;
  for (const size_t updates : {16u, 64u, 256u}) {
    for (const size_t cadence : {0u, 6u, 3u}) {  // 0 = never retrain
      // A fresh pipeline per cell: every cell replays the same stream
      // prefix from the same initial graph (Step() is a pure function of
      // the batch counter), so rows differ only in the grid knobs.
      Rng gen_rng(kSeed);
      Graph initial = bench::DieOnError(
          MakeDataset(DatasetId::kEmail, gen_rng, scale),
          "dataset synthesis");
      const size_t nodes = initial.num_nodes();

      StreamOptions options;
      options.method =
          MakeDefaultConfig(Method::kPrivImStar, 2.0, nodes);
      options.method.seed_count = 20;
      options.method.train.iterations = 20;
      options.retrain.drift_fraction = 0.0;
      options.retrain.staleness_batches = cadence;
      options.gen.events_per_batch = updates;
      options.rr_sketch_sets = 256;
      options.seed = kSeed;

      std::unique_ptr<StreamPipeline> pipeline = bench::DieOnError(
          StreamPipeline::Build(std::move(initial), std::move(options)),
          "stream pipeline build");
      for (size_t b = 0; b < batches; ++b) {
        bench::DieOnError(pipeline->Step(), "stream step");
      }

      Row row;
      row.updates_per_batch = updates;
      row.retrain_every = cadence;
      row.batches = batches;
      row.retrains = pipeline->num_retrains() - 1;  // exclude round 0
      std::vector<double> seconds;
      double repaired = 0;
      for (const StreamStepRecord& r : pipeline->history()) {
        seconds.push_back(r.seconds);
        repaired += static_cast<double>(r.repaired_sets);
      }
      std::sort(seconds.begin(), seconds.end());
      row.batch_seconds_p50 =
          seconds.empty() ? 0.0 : seconds[seconds.size() / 2];
      row.repaired_sets_per_batch =
          seconds.empty() ? 0.0 : repaired / static_cast<double>(batches);
      row.final_utility = pipeline->history().back().utility;
      row.final_epsilon = pipeline->CumulativeEpsilon();

      std::cerr << RowJson(row) << "\n";
      rows.push_back(RowJson(row));
    }
  }

  std::string json = "{\n  \"bench\": \"stream\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += rows[i];
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_stream: cannot write " << out_path << "\n";
    return 1;
  }
  out << json;
  std::cerr << "bench_stream: wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace privim

int main() { return privim::RunAll(); }
