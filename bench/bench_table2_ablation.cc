// Reproduces Table II: coverage ratio of PrivIM / PrivIM+SCS /
// PrivIM+SCS+BES (= PrivIM*) over the six main datasets at epsilon in
// {4, 1}, mean +/- std over repeats. Also prints the Non-Private row and an
// extra ablation over the BES shrink factor s (DESIGN.md ablation #2).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace privim {
namespace {

std::string Cell(const MethodEval& eval) {
  return StrFormat("%.2f +/- %.2f", eval.mean_coverage,
                   eval.std_coverage);
}

void Run() {
  const size_t repeats = RepeatsFromEnv(2);
  PrintBenchHeader("Table II: Coverage ratio ablation (SCS / BES)", repeats);
    const double scale = ScaleFromEnv();

  std::vector<DatasetInstance> instances;
  std::vector<std::string> headers = {"Method", "eps"};
  for (const DatasetSpec& spec : MainDatasetSpecs()) {
    instances.push_back(bench::DieOnError(
        PrepareDataset(spec.id, /*seed=*/2000, 50, 1, scale),
        "PrepareDataset " + spec.name));
    headers.push_back(spec.name);
  }
  TablePrinter table(headers);

  auto add_row = [&](const std::string& label, Method method, double eps) {
    std::vector<std::string> row = {label, eps >= kNonPrivateEpsilon
                                               ? "inf"
                                               : FormatDouble(eps, 0)};
    for (const DatasetInstance& instance : instances) {
      PrivImConfig cfg = MakeDefaultConfig(
          method, eps, instance.train_graph.num_nodes());
      MethodEval eval = bench::DieOnError(
          EvaluateMethod(instance, cfg, repeats, /*seed=*/31),
          label + " on " + instance.spec.name);
      row.push_back(Cell(eval));
    }
    table.AddRow(std::move(row));
  };

  add_row("Non-Private", Method::kNonPrivate, kNonPrivateEpsilon);
  for (double eps : {4.0, 1.0}) {
    add_row("PrivIM", Method::kPrivIm, eps);
    add_row("PrivIM+SCS", Method::kPrivImScs, eps);
    add_row("PrivIM+SCS+BES (PrivIM*)", Method::kPrivImStar, eps);
  }
  table.Print(std::cout);

  // Ablation: BES shrink factor s on one mid-size dataset.
  std::cout << "\nAblation: BES shrink factor s (PrivIM*, eps=3, "
            << instances[2].spec.name << ")\n";
  TablePrinter ablation({"s", "coverage ratio (%)", "stage2 subgraphs"});
  for (size_t s : {1u, 2u, 4u, 8u}) {
    PrivImConfig cfg = MakeDefaultConfig(
        Method::kPrivImStar, 3.0, instances[2].train_graph.num_nodes());
    cfg.freq.shrink_factor = s;
    MethodEval eval = bench::DieOnError(
        EvaluateMethod(instances[2], cfg, repeats, /*seed=*/47),
        "shrink ablation");
    ablation.AddRow({StrFormat("%zu", s),
                     FormatDouble(eval.mean_coverage, 2),
                     StrFormat("%zu", eval.last_run.stage2_count)});
  }
  ablation.Print(std::cout);
  std::cout << "\nExpected shape (paper): +SCS lifts PrivIM sharply; +BES "
               "adds a further gain,\nlargest at small epsilon.\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
