// Reproduces Figure 13 (Appendix I): coverage ratio of the naive PrivIM
// with different maximum in-degree bounds theta, at epsilon = 3.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace privim {
namespace {

void Run() {
  const size_t repeats = RepeatsFromEnv(3);
  PrintBenchHeader("Figure 13: Impact of theta on naive PrivIM (eps=3)", repeats);
    const double scale = ScaleFromEnv();

  std::vector<std::string> headers = {"theta"};
  std::vector<DatasetInstance> instances;
  for (const DatasetSpec& spec : MainDatasetSpecs()) {
    headers.push_back(spec.name);
    instances.push_back(bench::DieOnError(
        PrepareDataset(spec.id, /*seed=*/8000, 50, 1, scale),
        "PrepareDataset " + spec.name));
  }
  TablePrinter table(headers);

  for (size_t theta : {5u, 10u, 15u, 20u}) {
    std::vector<double> row;
    for (const DatasetInstance& instance : instances) {
      PrivImConfig cfg = MakeDefaultConfig(
          Method::kPrivIm, 3.0, instance.train_graph.num_nodes());
      cfg.theta = theta;
      MethodEval eval = bench::DieOnError(
          EvaluateMethod(instance, cfg, repeats, /*seed=*/83),
          StrFormat("theta=%zu on %s", theta,
                    instance.spec.name.c_str()));
      row.push_back(eval.mean_coverage);
    }
    table.AddRow(StrFormat("%zu", theta), row, 2);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): both very small theta (structure "
               "destroyed) and very large\ntheta (excessive noise) hurt; "
               "theta = 10 is generally best.\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
