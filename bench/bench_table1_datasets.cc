// Reproduces Table I: statistics of the experimented datasets, paper values
// next to the synthesized stand-ins actually used by this repo.

#include <iostream>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "graph/algorithms.h"
#include "graph/datasets.h"

namespace privim {
namespace {

std::string HumanCount(size_t n) {
  if (n >= 1000000000) return StrFormat("%.1fB", n / 1e9);
  if (n >= 1000000) return StrFormat("%.1fM", n / 1e6);
  if (n >= 1000) return StrFormat("%.1fK", n / 1e3);
  return StrFormat("%zu", n);
}

void Run() {
  PrintBenchHeader("Table I: Statistics of the experimented datasets", RepeatsFromEnv());
  TablePrinter table({"Dataset", "|V| (paper)", "|E| (paper)", "Type",
                      "AvgDeg (paper)", "|V| (sim)", "|E| (sim)",
                      "AvgDeg (sim)", "Partitions"});
  const double scale = ScaleFromEnv();
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    Rng rng(2025);
    Graph g = bench::DieOnError(MakeDataset(spec.id, rng, scale),
                                "MakeDataset " + spec.name);
    table.AddRow({spec.name, HumanCount(spec.paper_nodes),
                  HumanCount(spec.paper_edges),
                  spec.directed ? "Directed" : "Undirected",
                  FormatDouble(spec.paper_avg_degree, 2),
                  HumanCount(g.num_nodes()), HumanCount(g.num_edges()),
                  FormatDouble(g.AverageDegree(), 2),
                  StrFormat("%zu", spec.partitions)});
  }
  table.Print(std::cout);
  std::cout << "\nNote: simulated |E| counts directed arcs (undirected "
               "edges appear as two arcs);\nthe paper counts undirected "
               "edges once. Friendster rows describe one partition.\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
