#ifndef PRIVIM_BENCH_BENCH_UTIL_H_
#define PRIVIM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"

namespace privim::bench {

/// Aborts the bench with a readable message on error; bench binaries have
/// no meaningful partial results.
inline void DieOnError(const Status& status, const std::string& what) {
  if (!status.ok()) {
    std::cerr << "bench failed during " << what << ": "
              << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T DieOnError(Result<T> result, const std::string& what) {
  DieOnError(result.status(), what);
  return std::move(result).ValueOrDie();
}

}  // namespace privim::bench

#endif  // PRIVIM_BENCH_BENCH_UTIL_H_
