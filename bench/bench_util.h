#ifndef PRIVIM_BENCH_BENCH_UTIL_H_
#define PRIVIM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"

namespace privim::bench {

/// Aborts the bench with a readable message on error; bench binaries have
/// no meaningful partial results.
inline void DieOnError(const Status& status, const std::string& what) {
  if (!status.ok()) {
    std::cerr << "bench failed during " << what << ": "
              << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T DieOnError(Result<T> result, const std::string& what) {
  DieOnError(result.status(), what);
  return std::move(result).ValueOrDie();
}

/// Median of a sample (averaging the two central elements for even sizes).
/// Benches report medians rather than means: wall-clock samples on shared
/// machines are contaminated by one-sided scheduling outliers, which shift
/// a mean but not a median.
inline double Median(std::vector<double> values) {
  PRIVIM_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

/// Times `fn` `repeats` times on the monotonic clock (common/timer.h) and
/// returns the median seconds per call.
inline double MedianSeconds(size_t repeats, const std::function<void()>& fn) {
  PRIVIM_CHECK_GT(repeats, 0u);
  std::vector<double> samples;
  samples.reserve(repeats);
  for (size_t r = 0; r < repeats; ++r) {
    WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  return Median(std::move(samples));
}

}  // namespace privim::bench

#endif  // PRIVIM_BENCH_BENCH_UTIL_H_
