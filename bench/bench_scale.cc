// Million-to-ten-million-node scale benchmark for the graph substrate
// (docs/scale.md): builds directed G(n, p) graphs with average out-degree
// 10 at n = 10^5, 10^6, and 10^7 through the streaming two-pass path and
// writes one JSON row per size to BENCH_scale.json with
//
//   nodes, arcs            graph size actually built
//   build_seconds          streaming generator -> finished CSR, wall clock
//   peak_rss_bytes         the row process's VmHWM after the build
//   csr_bytes              Graph::MemoryFootprintBytes() of the result
//   peak_over_csr          (VmHWM delta across the build) / csr_bytes —
//                          the acceptance number: ~1.2 or less means the
//                          build never holds a second copy of the graph
//   walks_per_sec          warm RWR walks (2-hop bound) per second
//   ic_probes_per_sec      warm single-seed IC cascades (2 steps) per sec
//
// Each row runs in its OWN process (the parent re-executes itself via
// /proc/self/exe --row n): VmHWM is a process-lifetime high-water mark,
// so rows sharing a process would see the largest row's peak. The parent
// only orchestrates and writes the JSON.
//
// Environment:
//   BENCH_SCALE_ROWS  comma-separated node counts
//                     (default "100000,1000000,10000000")
//   BENCH_SCALE_OUT   output path (default BENCH_scale.json)

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "im/diffusion.h"
#include "obs/metrics.h"
#include "runtime/scratch.h"
#include "sampling/rwr_sampler.h"

namespace privim {
namespace {

/// VmHWM from /proc/self/status in bytes: the kernel's resident-set
/// high-water mark, which is what "does the build fit in memory" actually
/// means (heap-byte accounting lives in bench_micro's BM_ScaleSmoke and
/// tests/graph/builder_memory_test.cc; this is the end-to-end check).
uint64_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

struct Row {
  uint64_t nodes = 0;
  uint64_t arcs = 0;
  double build_seconds = 0;
  uint64_t peak_rss_bytes = 0;
  uint64_t csr_bytes = 0;
  double peak_over_csr = 0;
  double walks_per_sec = 0;
  double ic_probes_per_sec = 0;
};

std::string RowJson(const Row& r) {
  return StrFormat(
      "    {\"nodes\": %llu, \"arcs\": %llu, \"build_seconds\": %.3f, "
      "\"peak_rss_bytes\": %llu, \"csr_bytes\": %llu, "
      "\"peak_over_csr\": %.3f, \"walks_per_sec\": %.1f, "
      "\"ic_probes_per_sec\": %.1f}",
      static_cast<unsigned long long>(r.nodes),
      static_cast<unsigned long long>(r.arcs), r.build_seconds,
      static_cast<unsigned long long>(r.peak_rss_bytes),
      static_cast<unsigned long long>(r.csr_bytes), r.peak_over_csr,
      r.walks_per_sec, r.ic_probes_per_sec);
}

/// One size, run inside a fresh process. Prints the row JSON on stdout
/// (the only stdout output, so the parent can capture it verbatim).
int RunRow(uint64_t n) {
  Row row;
  row.nodes = n;
  const double p = 10.0 / static_cast<double>(n - 1);

  const uint64_t rss_before = PeakRssBytes();
  Rng gen(1000 + n);
  WallTimer build_timer;
  Graph g = bench::DieOnError(ErdosRenyi(n, p, /*directed=*/true, gen),
                              "streaming build");
  row.build_seconds = build_timer.ElapsedSeconds();
  row.peak_rss_bytes = PeakRssBytes();
  row.arcs = g.num_edges();
  row.csr_bytes = g.MemoryFootprintBytes();
  row.peak_over_csr =
      static_cast<double>(row.peak_rss_bytes - rss_before) /
      static_cast<double>(row.csr_bytes);

  // Warm RWR throughput: ~200 expected walks per round, 2-hop bound.
  {
    MetricsRegistry metrics;
    RwrConfig cfg;
    cfg.subgraph_size = 30;
    cfg.sampling_rate = 200.0 / static_cast<double>(n);
    cfg.hop_bound = 2;
    cfg.num_threads = 1;
    cfg.metrics = &metrics;
    RwrSampler sampler(cfg);
    Rng rng(7);
    bench::DieOnError(sampler.Extract(g, rng).status(), "warmup round");
    const MetricsSnapshot warm = metrics.Snapshot();
    WallTimer timer;
    bench::DieOnError(sampler.Extract(g, rng).status(), "timed round");
    const double seconds = timer.ElapsedSeconds();
    const MetricsSnapshot after = metrics.Snapshot();
    uint64_t walks = 0;
    for (const char* name :
         {"sampler.rwr.walks_accepted", "sampler.rwr.walks_rejected"}) {
      const auto b = warm.counters.find(name);
      const auto a = after.counters.find(name);
      walks += (a == after.counters.end() ? 0 : a->second) -
               (b == warm.counters.end() ? 0 : b->second);
    }
    row.walks_per_sec = static_cast<double>(walks) / seconds;
  }

  // Warm IC probe throughput: single-seed 2-step cascades, the CELF
  // oracle's dominant shape.
  {
    WorkspacePool pool;
    Rng rng(11);
    constexpr size_t kProbes = 64;
    constexpr size_t kTrials = 64;
    const uint64_t stride = n / (kProbes + 1);
    std::vector<NodeId> probe(1);
    probe[0] = 0;
    EstimateIcSpread(g, probe, 4, rng, /*max_steps=*/2, 1, &pool);  // warm
    WallTimer timer;
    for (size_t i = 0; i < kProbes; ++i) {
      probe[0] = static_cast<NodeId>((i + 1) * stride);
      EstimateIcSpread(g, probe, kTrials, rng, /*max_steps=*/2, 1, &pool);
    }
    row.ic_probes_per_sec =
        static_cast<double>(kProbes * kTrials) / timer.ElapsedSeconds();
  }

  std::cout << RowJson(row) << "\n";
  return 0;
}

int RunAll() {
  std::vector<uint64_t> sizes;
  {
    const char* env = std::getenv("BENCH_SCALE_ROWS");
    std::string spec = env != nullptr ? env : "100000,1000000,10000000";
    for (size_t pos = 0; pos < spec.size();) {
      const size_t comma = spec.find(',', pos);
      const std::string tok =
          spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                      : comma - pos);
      const uint64_t v = std::strtoull(tok.c_str(), nullptr, 10);
      if (v > 0) sizes.push_back(v);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  const char* out_env = std::getenv("BENCH_SCALE_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_scale.json";

  // Resolve our own binary up front: popen goes through /bin/sh, where
  // /proc/self/exe would name the *shell*, not this benchmark.
  char self_path[4096];
  const ssize_t len =
      readlink("/proc/self/exe", self_path, sizeof(self_path) - 1);
  if (len <= 0) {
    std::cerr << "bench_scale: cannot resolve /proc/self/exe\n";
    return 1;
  }
  self_path[len] = '\0';

  std::vector<std::string> rows;
  for (uint64_t n : sizes) {
    std::cerr << "bench_scale: row n=" << n << "...\n";
    const std::string cmd = StrFormat(
        "'%s' --row %llu", self_path, static_cast<unsigned long long>(n));
    FILE* child = popen(cmd.c_str(), "r");
    if (child == nullptr) {
      std::cerr << "bench_scale: failed to spawn row process\n";
      return 1;
    }
    std::string captured;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), child)) > 0) {
      captured.append(buf, got);
    }
    const int rc = pclose(child);
    if (rc != 0 || captured.empty()) {
      std::cerr << "bench_scale: row n=" << n << " failed (rc=" << rc
                << ")\n";
      return 1;
    }
    while (!captured.empty() &&
           (captured.back() == '\n' || captured.back() == '\r')) {
      captured.pop_back();
    }
    std::cerr << captured << "\n";
    rows.push_back(std::move(captured));
  }

  std::string json = "{\n  \"bench\": \"scale\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += rows[i];
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_scale: cannot write " << out_path << "\n";
    return 1;
  }
  out << json;
  std::cerr << "bench_scale: wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace privim

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--row") == 0) {
    return privim::RunRow(std::strtoull(argv[2], nullptr, 10));
  }
  if (argc != 1) {
    std::cerr << "usage: bench_scale            (all rows -> JSON)\n"
                 "       bench_scale --row N    (one row, JSON to stdout)\n";
    return 2;
  }
  return privim::RunAll();
}
