// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate pieces: sampling, accounting, GNN forward/backward, CELF, and
// the DESIGN.md ablations on oracle choice.

#include <benchmark/benchmark.h>

#include <malloc.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "common/math_util.h"
#include "common/rng.h"
#include "core/loss.h"
#include "core/plan_cache.h"
#include "core/trainer.h"
#include "dp/rdp_accountant.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "im/diffusion.h"
#include "im/seed_selection.h"
#include "nn/features.h"
#include "nn/gnn.h"
#include "graph/datasets.h"
#include "graph/graph_delta.h"
#include "graph/graph_view.h"
#include "graph/subgraph.h"
#include "graph/update_stream.h"
#include "im/rr_sets.h"
#include "sampling/freq_sampler.h"
#include "sampling/rwr_sampler.h"
#include "shard/shard_runner.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

// ---- Counting allocator. Global operator new/delete replacements with
// two independently armed instruments:
//  * an allocation COUNTER (g_count_allocs) — the BM_*SteadyStateAllocs
//    gates arm it around warm plan/serve execution and hard-fail the
//    binary if the count is nonzero, enforcing the
//    zero-steady-state-allocation contracts of tensor/plan.h and
//    serve/query_engine.h in CI (tools/run_checks.sh runs them on every
//    rung);
//  * a BYTE tracker (g_track_bytes) — maintains net live heap bytes (via
//    malloc_usable_size) and their high-water mark, which BM_ScaleSmoke
//    arms around a million-node streaming graph build to enforce the
//    peak <= ~1.2x-of-final-CSR contract of graph/graph.h (docs/scale.md;
//    the same measurement tests/graph/builder_memory_test.cc pins at unit
//    scale). ----

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<bool> g_track_bytes{false};
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void NoteAlloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void NoteAllocBytes(void* p) {
  if (p == nullptr || !g_track_bytes.load(std::memory_order_relaxed)) return;
  const int64_t sz = static_cast<int64_t>(malloc_usable_size(p));
  const int64_t live =
      g_live_bytes.fetch_add(sz, std::memory_order_relaxed) + sz;
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void NoteFreeBytes(void* p) {
  if (p == nullptr || !g_track_bytes.load(std::memory_order_relaxed)) return;
  g_live_bytes.fetch_sub(static_cast<int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
}

void* CountedAlloc(std::size_t size) {
  NoteAlloc();
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  NoteAllocBytes(p);
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  NoteAlloc();
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  NoteAllocBytes(p);
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  NoteAlloc();
  void* p = std::malloc(size != 0 ? size : 1);
  NoteAllocBytes(p);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  NoteAlloc();
  void* p = std::malloc(size != 0 ? size : 1);
  NoteAllocBytes(p);
  return p;
}
void operator delete(void* p) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  NoteFreeBytes(p);
  std::free(p);
}

namespace privim {
namespace {

Graph SharedGraph(size_t n) {
  static Rng& rng = *new Rng(42);
  return std::move(BarabasiAlbert(n, 5, rng)).ValueOrDie();
}

void BM_ThetaProjection(benchmark::State& state) {
  Graph g = SharedGraph(static_cast<size_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThetaBoundedProjection(g, 10, rng));
  }
}
BENCHMARK(BM_ThetaProjection)->Arg(1000)->Arg(4000);

void BM_RwrSampling(benchmark::State& state) {
  Graph g = SharedGraph(2000);
  RwrConfig cfg;
  cfg.subgraph_size = 40;
  cfg.sampling_rate = 0.1;
  RwrSampler sampler(cfg);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Extract(g, rng));
  }
}
BENCHMARK(BM_RwrSampling);

void BM_DualStageSampling(benchmark::State& state) {
  Graph g = SharedGraph(2000);
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 40;
  cfg.sampling_rate = 0.1;
  cfg.frequency_threshold = 6;
  FreqSampler sampler(cfg);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Extract(g, rng));
  }
}
BENCHMARK(BM_DualStageSampling);

void BM_AccountantCalibration(benchmark::State& state) {
  DpSgdSpec spec;
  spec.max_occurrences = 6;
  spec.container_size = 300;
  spec.batch_size = 16;
  spec.iterations = 60;
  spec.clip_bound = 1.0;
  RdpAccountant acc = std::move(RdpAccountant::Create(spec)).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.CalibrateSigma({2.0, 1e-5}));
  }
}
BENCHMARK(BM_AccountantCalibration);

void BM_GnnForwardBackward(benchmark::State& state) {
  Rng gen(4);
  Graph g = std::move(ErdosRenyi(static_cast<size_t>(state.range(0)), 0.1,
                                 false, gen))
                .ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix features = BuildNodeFeatures(g);
  GnnConfig cfg;
  cfg.type = GnnType::kGrat;
  cfg.in_dim = kNodeFeatureDim;
  Rng rng(5);
  GnnModel model(cfg, rng);
  ImLossConfig loss_cfg;
  for (auto _ : state) {
    Tensor probs = model.Forward(ctx, Tensor(features));
    Tensor loss = ImPenaltyLoss(ctx, probs, loss_cfg);
    model.params().ZeroGrads();
    loss.Backward();
    benchmark::DoNotOptimize(loss.value()(0, 0));
  }
}
BENCHMARK(BM_GnnForwardBackward)->Arg(40)->Arg(80)->Arg(200);

// ---- Compiled-plan cases (tensor/plan.h, docs/performance.md). Same
// graph/model/seed setup as BM_GnnForwardBackward so the tape rows above
// are the direct baseline; the plan produces bit-identical losses and
// gradients (tests/nn/plan_equivalence_test.cc) while skipping all of the
// tape's node/closure construction. ----

void BM_PlanForwardBackward(benchmark::State& state) {
  Rng gen(4);
  Graph g = std::move(ErdosRenyi(static_cast<size_t>(state.range(0)), 0.1,
                                 false, gen))
                .ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix features = BuildNodeFeatures(g);
  GnnConfig cfg;
  cfg.type = GnnType::kGrat;
  cfg.in_dim = kNodeFeatureDim;
  Rng rng(5);
  GnnModel model(cfg, rng);
  ImLossConfig loss_cfg;
  // Arg 1 selects the compiler passes: 0 = scalar reference (the
  // tape-bit-identical baseline), 1 = optimized (elementwise fusion +
  // best SIMD tier, PlanOptions::Native(); tolerance contract in
  // docs/performance.md). The label records which tier actually ran so
  // BENCH_plan_compile.json rows are comparable across hosts.
  const bool optimized = state.range(1) != 0;
  const GnnPlan plan = CompileTrainingPlan(
      model, ctx, loss_cfg,
      optimized ? PlanOptions::Native() : PlanOptions::Reference());
  state.SetLabel(optimized ? std::string("fused+") + simd::IsaName(plan.isa())
                           : "reference");
  std::vector<float> params(model.params().num_scalars());
  model.params().FlattenParams(params);
  std::vector<float> grad(params.size());
  PlanArena arena;
  for (auto _ : state) {
    plan.Forward(params, features, arena);
    plan.Backward(params, features, arena, grad);
    benchmark::DoNotOptimize(plan.OutputScalar(arena));
  }
}
BENCHMARK(BM_PlanForwardBackward)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({80, 0})
    ->Args({80, 1})
    ->Args({200, 0})
    ->Args({200, 1});

// Allocation gate, not a timing case: runs full steady-state training
// iterations (a batch of per-sample Forward + OutputScalar + Backward +
// ClipL2 passes, the index-order batch reduce, and the averaged parameter
// update) with the counting allocator armed, and kills the binary if a
// single heap allocation happens. tools/run_checks.sh runs this case by
// name on every rung, so a regression in the arena layout fails CI loudly
// rather than showing up as a quiet slowdown.
void BM_PlanSteadyStateAllocs(benchmark::State& state) {
  Rng gen(4);
  Graph g = std::move(ErdosRenyi(80, 0.1, false, gen)).ValueOrDie();
  GraphContext ctx = BuildGraphContext(g);
  Matrix features = BuildNodeFeatures(g);
  GnnConfig cfg;
  cfg.type = GnnType::kGrat;
  cfg.in_dim = kNodeFeatureDim;
  Rng rng(5);
  GnnModel model(cfg, rng);
  ImLossConfig loss_cfg;
  // Both the scalar reference plan AND the optimized (fused + SIMD) plan
  // are under the gate: the fusion pass's stage descriptors live on the
  // executor's stack and the kernels are pure, so the zero-allocation
  // guarantee is identical for every PlanOptions.
  const GnnPlan ref_plan =
      CompileTrainingPlan(model, ctx, loss_cfg, PlanOptions::Reference());
  const GnnPlan opt_plan =
      CompileTrainingPlan(model, ctx, loss_cfg, PlanOptions::Native());
  const size_t dim = model.params().num_scalars();
  std::vector<float> params(dim);
  model.params().FlattenParams(params);
  std::vector<float> grad(dim);
  std::vector<float> batch_sum(dim);
  PlanArena arena;
  // Warm pass: the first executions grow the shared arena to both plans'
  // high-water layout.
  for (const GnnPlan* plan : {&ref_plan, &opt_plan}) {
    plan->Forward(params, features, arena);
    plan->Backward(params, features, arena, grad);
  }

  constexpr size_t kBatch = 8;
  uint64_t observed = 0;
  for (auto _ : state) {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    std::fill(batch_sum.begin(), batch_sum.end(), 0.0f);
    for (size_t b = 0; b < kBatch; ++b) {
      const GnnPlan& plan = (b % 2 == 0) ? ref_plan : opt_plan;
      plan.Forward(params, features, arena);
      benchmark::DoNotOptimize(plan.OutputScalar(arena));
      plan.Backward(params, features, arena, grad);
      benchmark::DoNotOptimize(ClipL2(grad, 1.0));
      for (size_t i = 0; i < dim; ++i) batch_sum[i] += grad[i];
    }
    for (size_t i = 0; i < dim; ++i) {
      params[i] -= 0.05f * (batch_sum[i] / static_cast<float>(kBatch));
    }
    g_count_allocs.store(false, std::memory_order_relaxed);
    observed += g_alloc_count.load(std::memory_order_relaxed);
  }
  state.counters["steady_state_allocs"] = static_cast<double>(observed);
  if (observed != 0) {
    std::fprintf(stderr,
                 "FATAL: compiled-plan steady state performed %llu heap "
                 "allocation(s); tensor/plan.h guarantees zero.\n",
                 static_cast<unsigned long long>(observed));
    std::exit(1);
  }
}
BENCHMARK(BM_PlanSteadyStateAllocs);

// Serving-path allocation gate (src/serve/): a WARM QueryEngine executing
// a mixed stream of all three query types across all three spread
// estimators must never touch the heap — snapshot inference runs in the
// engine's arena, diffusion in its epoch-stamped workspace, sketch
// coverage in its stamped VisitedSet, and the response reuses its
// vectors. Same kill-the-binary contract as BM_PlanSteadyStateAllocs;
// tools/run_checks.sh runs both by name.
void BM_ServeSteadyStateAllocs(benchmark::State& state) {
  Rng gen(6);
  Graph g = std::move(ErdosRenyi(80, 0.1, true, gen)).ValueOrDie();
  GnnConfig cfg;
  cfg.type = GnnType::kGrat;
  cfg.in_dim = kNodeFeatureDim;
  Rng rng(7);
  auto model = std::make_unique<GnnModel>(cfg, rng);
  const std::shared_ptr<const ModelSnapshot> snapshot =
      std::move(ModelSnapshot::FromModel(std::move(model), g)).ValueOrDie();
  Rng sketch_rng(8);
  const RrSketch sketch =
      std::move(RrSketch::Generate(g, 256, sketch_rng, 1)).ValueOrDie();

  std::vector<QueryRequest> mix;
  {
    QueryRequest req;
    req.type = QueryType::kTopK;
    req.k = 10;
    req.estimator = SpreadEstimator::kExact;
    req.max_steps = 1;
    mix.push_back(std::move(req));
  }
  {
    QueryRequest req;
    req.type = QueryType::kTopK;
    req.k = 10;
    req.estimator = SpreadEstimator::kMonteCarloIc;
    req.trials = 8;
    req.max_steps = 1;
    req.seed = 1;
    mix.push_back(std::move(req));
  }
  {
    QueryRequest req;
    req.type = QueryType::kSpread;
    req.seeds = {0, 1, 2};
    req.estimator = SpreadEstimator::kMonteCarloIc;
    req.trials = 8;
    req.max_steps = 1;
    req.seed = 2;
    mix.push_back(std::move(req));
  }
  {
    QueryRequest req;
    req.type = QueryType::kSpread;
    req.seeds = {3, 4};
    req.estimator = SpreadEstimator::kRrSketch;
    mix.push_back(std::move(req));
  }
  {
    QueryRequest req;
    req.type = QueryType::kMarginalGain;
    req.seeds = {0, 1};
    req.candidates = {2, 3, 4, 5};
    req.estimator = SpreadEstimator::kMonteCarloIc;
    req.trials = 8;
    req.max_steps = 1;
    req.seed = 3;
    mix.push_back(std::move(req));
  }

  QueryEngine engine;
  QueryResponse resp;
  // Warm pass: arena growth, workspace init, response-vector high-water.
  for (const QueryRequest& req : mix) {
    const Status s = engine.Execute(g, snapshot.get(), &sketch, req, resp);
    if (!s.ok()) {
      std::fprintf(stderr, "FATAL: warmup query failed: %s\n",
                   s.ToString().c_str());
      std::exit(1);
    }
  }

  uint64_t observed = 0;
  for (auto _ : state) {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    for (const QueryRequest& req : mix) {
      engine.Execute(g, snapshot.get(), &sketch, req, resp);
      benchmark::DoNotOptimize(resp.spread);
    }
    g_count_allocs.store(false, std::memory_order_relaxed);
    observed += g_alloc_count.load(std::memory_order_relaxed);
  }
  state.counters["steady_state_allocs"] = static_cast<double>(observed);
  if (observed != 0) {
    std::fprintf(stderr,
                 "FATAL: warm serving queries performed %llu heap "
                 "allocation(s); serve/query_engine.h guarantees zero.\n",
                 static_cast<unsigned long long>(observed));
    std::exit(1);
  }
}
BENCHMARK(BM_ServeSteadyStateAllocs);

// Scale smoke (the scale-smoke rung of tools/run_checks.sh runs this case
// by name): a 10^6-node generator graph goes through the streaming
// two-pass build with the byte-tracking allocator armed, and the binary
// dies if the build's peak heap growth exceeds 1.2x the finished CSR —
// the graph/graph.h contract that makes 10^8-arc builds feasible
// (docs/scale.md). The timed section then runs one warm RWR sampling
// round over the million nodes, so the rung also exercises the O(ball)
// hot path at scale (the hard complexity assertions live in
// tests/scale/scale_properties_test.cc).
void BM_ScaleSmoke(benchmark::State& state) {
  constexpr size_t kNodes = 1000000;
  Rng gen(30);
  const double p = 10.0 / static_cast<double>(kNodes - 1);

  g_live_bytes.store(0, std::memory_order_relaxed);
  g_peak_bytes.store(0, std::memory_order_relaxed);
  g_track_bytes.store(true, std::memory_order_relaxed);
  Graph g = std::move(ErdosRenyi(kNodes, p, /*directed=*/true, gen))
                .ValueOrDie();
  g_track_bytes.store(false, std::memory_order_relaxed);

  const double peak =
      static_cast<double>(g_peak_bytes.load(std::memory_order_relaxed));
  const double footprint = static_cast<double>(g.MemoryFootprintBytes());
  const double ratio = peak / footprint;
  if (ratio > 1.2) {
    std::fprintf(stderr,
                 "FATAL: million-node streaming build peaked at %.0f heap "
                 "bytes for a %.0f-byte CSR (%.3fx > 1.2x contract, "
                 "graph/graph.h).\n",
                 peak, footprint, ratio);
    std::exit(1);
  }

  RwrConfig cfg;
  cfg.subgraph_size = 30;
  cfg.sampling_rate = 2e-4;  // ~200 walks per round.
  cfg.hop_bound = 2;
  cfg.num_threads = 1;
  RwrSampler sampler(cfg);
  Rng rng(31);
  // Warm round: sizes the epoch-stamped maps (the one allowed O(|V|)
  // initialization per slot).
  benchmark::DoNotOptimize(sampler.Extract(g, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Extract(g, rng));
  }
  state.counters["build_peak_over_csr"] = ratio;
  state.counters["csr_bytes"] = footprint;
}
BENCHMARK(BM_ScaleSmoke)->Iterations(1)->Unit(benchmark::kMillisecond);

// Incremental-maintenance locality gate (docs/streaming.md): applying a
// small update batch to a large weakly-coupled graph must repair only the
// RR sets whose balls contain a touched node — O(ball), never O(graph).
// Hard-fails the binary when more than 25% of the sketch regenerates for
// a 16-event batch on a 50k-node graph (the bit-identity of the repair is
// proven in tests/stream/; this guards its *cost*).
void BM_StreamUpdate(benchmark::State& state) {
  constexpr size_t kNodes = 50000;
  constexpr size_t kSets = 512;
  GraphBuilder b(kNodes);
  for (NodeId u = 0; u < kNodes; ++u) {
    // Low IC weights keep RR balls small; with unit weights every
    // full-length cascade spans the component and locality is meaningless.
    (void)b.AddUndirectedEdge(u, (u + 1) % kNodes, 0.05f);
    (void)b.AddUndirectedEdge(u, (u + 17) % kNodes, 0.05f);
  }
  Graph base = std::move(b.Build()).ValueOrDie();
  GraphDelta delta(base);
  GraphView view(base, &delta);
  Rng rng(0x57123);
  RrSketch sketch =
      std::move(RrSketch::Generate(view, kSets, rng, 1)).ValueOrDie();

  StreamGenConfig gen;
  gen.events_per_batch = 16;
  uint64_t batch_index = 0;
  size_t repaired_total = 0;
  size_t batches = 0;
  for (auto _ : state) {
    UpdateBatch batch =
        MakeSyntheticBatch(view, batch_index++, 0x57124, gen);
    ApplyEffects fx =
        std::move(ApplyUpdateBatch(delta, batch)).ValueOrDie();
    repaired_total +=
        std::move(sketch.Repair(view, fx.changed_in_rows, 1)).ValueOrDie();
    ++batches;
  }
  const double repaired_frac =
      static_cast<double>(repaired_total) /
      (static_cast<double>(batches) * static_cast<double>(kSets));
  if (repaired_frac > 0.25) {
    std::fprintf(stderr,
                 "FATAL: a %zu-event update batch repaired %.1f%% of the "
                 "RR sketch on average (> 25%% gate) — incremental repair "
                 "has lost its O(ball) locality (im/rr_sets.h).\n",
                 gen.events_per_batch, 100.0 * repaired_frac);
    std::exit(1);
  }
  state.counters["repaired_sets_per_batch"] =
      static_cast<double>(repaired_total) / static_cast<double>(batches);
  state.counters["sketch_sets"] = static_cast<double>(kSets);
}
BENCHMARK(BM_StreamUpdate)->Unit(benchmark::kMillisecond);

void BM_CelfVsGreedy(benchmark::State& state) {
  Graph g = SharedGraph(1500);
  std::vector<NodeId> candidates(g.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  SpreadOracle oracle = MakeExactUnitOracle(g, 1);
  const bool lazy = state.range(0) != 0;
  for (auto _ : state) {
    if (lazy) {
      benchmark::DoNotOptimize(CelfSelect(candidates, 20, oracle));
    } else {
      benchmark::DoNotOptimize(GreedySelect(candidates, 20, oracle));
    }
  }
}
BENCHMARK(BM_CelfVsGreedy)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Ablation #4 (DESIGN.md): exact unit-weight oracle vs Monte-Carlo IC.
void BM_SpreadOracles(benchmark::State& state) {
  Graph g = SharedGraph(2000);
  Rng rng(6);
  std::vector<NodeId> seeds;
  for (NodeId s = 0; s < 50; ++s) seeds.push_back(s * 7);
  const bool exact = state.range(0) != 0;
  for (auto _ : state) {
    if (exact) {
      benchmark::DoNotOptimize(ExactUnitWeightSpread(g, seeds, 1));
    } else {
      benchmark::DoNotOptimize(EstimateIcSpread(g, seeds, 100, rng, 1));
    }
  }
}
BENCHMARK(BM_SpreadOracles)->Arg(1)->Arg(0);

// ---- Serial vs parallel runtime cases. Arg(0) is the thread count (1 =
// serial inline path); results are bit-identical across counts, so these
// measure pure speedup. On an n-core machine expect the Arg(n) rows to
// approach n-fold throughput for the embarrassingly parallel loops. ----

void BM_ParallelBatchGradients(benchmark::State& state) {
  Rng gen(8);
  Graph g = std::move(BarabasiAlbert(800, 5, gen)).ValueOrDie();
  FreqSamplingConfig scfg;
  scfg.subgraph_size = 40;
  scfg.sampling_rate = 1.0;
  scfg.frequency_threshold = 20;
  Rng srng(9);
  DualStageResult sampled =
      std::move(FreqSampler(scfg).Extract(g, srng)).ValueOrDie();
  GnnConfig gcfg;
  gcfg.type = GnnType::kGrat;
  gcfg.in_dim = kNodeFeatureDim;
  Rng mrng(10);
  GnnModel model(gcfg, mrng);
  TrainConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.iterations = 4;
  tcfg.noise_kind = NoiseKind::kNone;
  tcfg.num_threads = static_cast<size_t>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainDpGnn(model, sampled.container, tcfg,
                                        rng));
  }
}
BENCHMARK(BM_ParallelBatchGradients)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Tape vs compiled-plan training iterations on identical seeds (Arg: 0 =
// dynamic-tape reference, 1 = compiled plans). Both paths release
// bit-identical losses, gradients, and parameters
// (tests/core/trainer_plan_test.cc), so the ratio between the two rows is
// pure execution-engine speedup — the headline number recorded in
// BENCH_plan_compile.json.
void BM_TrainIterationTapeVsPlan(benchmark::State& state) {
  Rng gen(8);
  Graph g = std::move(BarabasiAlbert(800, 5, gen)).ValueOrDie();
  FreqSamplingConfig scfg;
  scfg.subgraph_size = 40;
  scfg.sampling_rate = 1.0;
  scfg.frequency_threshold = 20;
  Rng srng(9);
  DualStageResult sampled =
      std::move(FreqSampler(scfg).Extract(g, srng)).ValueOrDie();
  GnnConfig gcfg;
  gcfg.type = GnnType::kGrat;
  gcfg.in_dim = kNodeFeatureDim;
  Rng mrng(10);
  GnnModel model(gcfg, mrng);
  TrainConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.iterations = 4;
  tcfg.noise_kind = NoiseKind::kNone;
  tcfg.num_threads = 1;
  tcfg.use_compiled_plan = state.range(0) != 0;
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainDpGnn(model, sampled.container, tcfg,
                                        rng));
  }
}
BENCHMARK(BM_TrainIterationTapeVsPlan)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Telemetry overhead on the training hot path: identical training loop with
// the full instrument set attached (Arg(1)) vs disabled (Arg(0)). The
// acceptance bar is <3% overhead — recording is a handful of relaxed atomic
// adds per sample against a forward/backward pass that dominates by orders
// of magnitude.
void BM_TrainTelemetryOverhead(benchmark::State& state) {
  Rng gen(14);
  Graph g = std::move(BarabasiAlbert(800, 5, gen)).ValueOrDie();
  FreqSamplingConfig scfg;
  scfg.subgraph_size = 40;
  scfg.sampling_rate = 1.0;
  scfg.frequency_threshold = 20;
  Rng srng(15);
  DualStageResult sampled =
      std::move(FreqSampler(scfg).Extract(g, srng)).ValueOrDie();
  GnnConfig gcfg;
  gcfg.type = GnnType::kGrat;
  gcfg.in_dim = kNodeFeatureDim;
  Rng mrng(16);
  GnnModel model(gcfg, mrng);
  RunTelemetry telemetry;
  TrainConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.iterations = 4;
  tcfg.noise_stddev = 0.05;
  tcfg.telemetry = state.range(0) != 0 ? &telemetry : nullptr;
  Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainDpGnn(model, sampled.container, tcfg,
                                        rng));
    telemetry.train.clear();
  }
}
BENCHMARK(BM_TrainTelemetryOverhead)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelContainerSampling(benchmark::State& state) {
  Graph g = SharedGraph(4000);
  FreqSamplingConfig cfg;
  cfg.subgraph_size = 40;
  cfg.sampling_rate = 0.5;
  cfg.frequency_threshold = 6;
  cfg.num_threads = static_cast<size_t>(state.range(0));
  FreqSampler sampler(cfg);
  Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Extract(g, rng));
  }
}
BENCHMARK(BM_ParallelContainerSampling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelMcSpread(benchmark::State& state) {
  Graph g = SharedGraph(4000);
  Rng rng(13);
  std::vector<NodeId> seeds;
  for (NodeId s = 0; s < 50; ++s) seeds.push_back(s * 11);
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateIcSpread(g, seeds, /*trials=*/256, rng, /*max_steps=*/-1,
                         threads));
  }
}
BENCHMARK(BM_ParallelMcSpread)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---- Scratch-workspace hot-path cases (docs/performance.md). A 100k-node
// small-world graph (Watts-Strogatz, 10 neighbors per node, 5% rewired)
// keeps 3-hop balls local, which is the regime the r-hop constraint is
// designed to produce (|N_r(v)| ≪ |V|) and the one where per-walk /
// per-trial O(num_nodes) initialization dominates: before the
// epoch-stamped workspaces, every attempted RWR walk allocated and filled
// a 100k-entry hop-distance vector and every IC Monte-Carlo trial a
// 100k-entry active bitmap, even though each touches only a few dozen
// nodes. (On a hub-dominated graph the 3-hop ball is most of the graph
// and the irreducible ball BFS dominates instead — the workspaces are
// neutral there.) The before/after numbers are recorded in
// BENCH_scratch_workspaces.json.

Graph& Synthetic100k() {
  static Graph* g = new Graph([] {
    Rng rng(21);
    return std::move(WattsStrogatz(100000, 5, 0.05, rng)).ValueOrDie();
  }());
  return *g;
}

Graph& SyntheticWeighted100k() {
  static Graph* g =
      new Graph(std::move(WeightedCascade(Synthetic100k())).ValueOrDie());
  return *g;
}

void BM_RwrWalks100k(benchmark::State& state) {
  Graph& g = Synthetic100k();
  RwrConfig cfg;
  cfg.subgraph_size = 20;  // 3-hop balls hold ~30-80 nodes here.
  cfg.sampling_rate = 0.02;  // ~2000 attempted walks per Extract.
  cfg.num_threads = static_cast<size_t>(state.range(0));
  RwrSampler sampler(cfg);
  Rng rng(22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Extract(g, rng));
  }
}
BENCHMARK(BM_RwrWalks100k)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_IcTrials100k(benchmark::State& state) {
  Graph& g = SyntheticWeighted100k();
  std::vector<NodeId> seeds;
  for (NodeId s = 0; s < 50; ++s) seeds.push_back(s * 1997);
  const size_t threads = static_cast<size_t>(state.range(0));
  Rng rng(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateIcSpread(g, seeds, /*trials=*/256, rng,
                                              /*max_steps=*/2, threads));
  }
}
BENCHMARK(BM_IcTrials100k)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

// CELF's lazy-gain loop evaluates thousands of single-candidate seed sets
// (MakeMonteCarloOracle probes), so single-seed trials are where most
// Monte-Carlo time goes in practice — and the regime where the cascade
// touches ~a handful of nodes while the old code still paid O(num_nodes)
// per trial.
void BM_IcProbe100k(benchmark::State& state) {
  Graph& g = SyntheticWeighted100k();
  std::vector<NodeId> probe{777};
  const size_t threads = static_cast<size_t>(state.range(0));
  Rng rng(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateIcSpread(g, probe, /*trials=*/256, rng,
                                              /*max_steps=*/2, threads));
  }
}
BENCHMARK(BM_IcProbe100k)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SegmentSoftmax(benchmark::State& state) {
  const size_t edges = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Matrix scores(edges, 1);
  std::vector<uint32_t> group(edges);
  const size_t groups = edges / 8 + 1;
  for (size_t e = 0; e < edges; ++e) {
    scores(e, 0) = static_cast<float>(rng.Uniform(-1, 1));
    group[e] = static_cast<uint32_t>(rng.UniformInt(groups));
  }
  for (auto _ : state) {
    Tensor t(scores, true);
    Tensor alpha = SegmentSoftmax(t, group, groups);
    benchmark::DoNotOptimize(alpha.value()(0, 0));
  }
}
BENCHMARK(BM_SegmentSoftmax)->Arg(1000)->Arg(10000);

// Overlap-scheduler gate (src/shard/overlap.h): the full sharded pipeline
// at 2 shards, inner threads = 1, run once with the overlap scheduler and
// once fully serialized. The scheduler's contract (docs/sharding.md,
// BENCH_shard.json) is that pipelining shard k+1's sampling against shard
// k's training saves at least 20% wall-clock over strictly serialized
// stages; the binary dies if it doesn't, so tools/run_checks.sh catches a
// scheduler regression on every rung. Results must also be bit-identical
// between the two schedules — overlap is pure scheduling.
void BM_ShardOverlap(benchmark::State& state) {
  Rng gen(42);
  Graph full = std::move(MakeDataset(DatasetId::kEmail, gen, 0.5))
                   .ValueOrDie();
  Rng split_rng(43);
  NodeSplit split =
      std::move(SplitNodes(full.num_nodes(), split_rng)).ValueOrDie();
  Subgraph train_sub =
      std::move(InduceSubgraph(full, split.train)).ValueOrDie();
  Subgraph eval_sub =
      std::move(InduceSubgraph(full, split.test)).ValueOrDie();

  PrivImConfig cfg = MakeDefaultConfig(Method::kPrivImStar, 2.0,
                                       train_sub.local.num_nodes());
  cfg.seed_count = 10;
  cfg.runtime.num_threads = 1;
  ShardRunOptions options;
  options.num_shards = 2;
  options.seed = 42;

  // Warm-up run (untimed): first-touch page faults, allocator growth, and
  // plan-cache fills would otherwise all land on whichever schedule runs
  // first and swamp the comparison.
  {
    options.overlap.overlap = false;
    ShardRunner warmup(train_sub.local, eval_sub.local, cfg, options);
    benchmark::DoNotOptimize(std::move(warmup.Run()).ValueOrDie().spread);
  }

  double overlap_wall = 0.0;
  double stage_sum = 0.0;
  std::vector<NodeId> overlap_seeds;
  std::vector<NodeId> serial_seeds;
  for (auto _ : state) {
    options.overlap.overlap = true;
    ShardRunner overlapped(train_sub.local, eval_sub.local, cfg, options);
    ShardedRunResult with =
        std::move(overlapped.Run()).ValueOrDie();
    overlap_wall += with.wall_seconds;
    stage_sum += with.stage_seconds;
    overlap_seeds = with.seeds;

    options.overlap.overlap = false;
    ShardRunner serialized(train_sub.local, eval_sub.local, cfg, options);
    ShardedRunResult without =
        std::move(serialized.Run()).ValueOrDie();
    serial_seeds = without.seeds;
  }
  // The overlap-timing methodology of docs/sharding.md: the per-stage
  // timers sum to what strictly serialized stages cost (stage_seconds);
  // end-to-end wall below that sum proves stages of different shards
  // genuinely overlapped in time (the metric is meaningful on any core
  // count, unlike run-vs-run walls, which only diverge with >= 2 CPUs).
  const double saved =
      stage_sum > 0.0 ? 100.0 * (1.0 - overlap_wall / stage_sum) : 0.0;
  state.counters["savings_pct"] = saved;
  if (overlap_seeds != serial_seeds) {
    std::fprintf(stderr,
                 "FATAL: the overlap scheduler changed the merged seed "
                 "set; scheduling must be invisible to results "
                 "(shard/overlap.h).\n");
    std::exit(1);
  }
  if (saved < 20.0) {
    std::fprintf(stderr,
                 "FATAL: overlap scheduler saved only %.1f%% wall-clock "
                 "vs serialized stages at 2 shards; the >= 20%% contract "
                 "(docs/sharding.md) is broken.\n",
                 saved);
    std::exit(1);
  }
}
BENCHMARK(BM_ShardOverlap)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace privim

BENCHMARK_MAIN();
