// Reproduces Figure 6 (Facebook, Gowalla) and Figure 10 (the remaining
// datasets): impact of the frequency threshold M on PrivIM* at epsilon = 3,
// for subgraph sizes n in {20, 40, 60, 80}. Also sweeps the frequency decay
// factor mu (DESIGN.md ablation #1).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace privim {
namespace {

void Run() {
  const size_t repeats = RepeatsFromEnv(2);
  PrintBenchHeader("Figures 6 & 10: Impact of threshold M on PrivIM* (eps=3)", repeats);
    const double scale = ScaleFromEnv();

  for (const DatasetSpec& spec : MainDatasetSpecs()) {
    DatasetInstance instance = bench::DieOnError(
        PrepareDataset(spec.id, /*seed=*/3000, 50, 1, scale),
        "PrepareDataset " + spec.name);
    // Email (1K nodes) uses M in {4..12}; larger datasets {2..10}
    // (Section V-C).
    const std::vector<size_t> m_grid =
        spec.id == DatasetId::kEmail
            ? std::vector<size_t>{4, 6, 8, 10, 12}
            : std::vector<size_t>{2, 4, 6, 8, 10};

    std::cout << "--- " << spec.name << ": influence spread ---\n";
    std::vector<std::string> headers = {"n \\ M"};
    for (size_t m : m_grid) headers.push_back(StrFormat("M=%zu", m));
    TablePrinter table(headers);
    for (size_t n : {20u, 40u, 60u, 80u}) {
      std::vector<double> row;
      for (size_t m : m_grid) {
        PrivImConfig cfg = MakeDefaultConfig(
            Method::kPrivImStar, 3.0, instance.train_graph.num_nodes());
        cfg.freq.subgraph_size = n;
        cfg.freq.frequency_threshold = m;
        MethodEval eval = bench::DieOnError(
            EvaluateMethod(instance, cfg, repeats, /*seed=*/59),
            StrFormat("n=%zu M=%zu", n, m));
        row.push_back(eval.mean_spread);
      }
      table.AddRow(StrFormat("n=%zu", n), row, 1);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // Ablation: decay factor mu of Eq. 9 on Facebook.
  DatasetInstance fb = bench::DieOnError(
      PrepareDataset(DatasetId::kFacebook, 3000, 50, 1, scale),
      "PrepareDataset Facebook");
  std::cout << "Ablation: frequency decay mu (PrivIM*, eps=3, Facebook)\n";
  TablePrinter ablation({"mu", "influence spread", "coverage (%)"});
  for (double mu : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    PrivImConfig cfg = MakeDefaultConfig(Method::kPrivImStar, 3.0,
                                         fb.train_graph.num_nodes());
    cfg.freq.decay = mu;
    MethodEval eval = bench::DieOnError(
        EvaluateMethod(fb, cfg, repeats, /*seed=*/61), "mu ablation");
    ablation.AddRow(FormatDouble(mu, 1),
                    {eval.mean_spread, eval.mean_coverage}, 1);
  }
  ablation.Print(std::cout);
  std::cout << "\nExpected shape (paper): spread peaks at small M and "
               "declines as M grows (more\nsubgraphs but more noise).\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
