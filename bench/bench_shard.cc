// Sharded-pipeline benchmark (docs/sharding.md): runs the shared-nothing
// ShardRunner over the Email synthetic stand-in at shards {1, 2, 4, 8} x
// threads {1, 8}, once with the overlap scheduler on and once fully
// serialized, and writes one JSON row per cell to BENCH_shard.json with
//
//   shards, threads          the grid cell
//   overlap_wall_seconds     end-to-end wall with shard k+1's sampling
//                            overlapped against shard k's training
//   serial_wall_seconds      the same cell with --no-overlap (stages
//                            strictly serialized), for reference
//   stage_seconds            sum of all per-shard stage times in the
//                            overlapped run — what strictly serialized
//                            stages would cost (docs/sharding.md's
//                            overlap-timing methodology)
//   savings_pct              100 * (1 - overlap_wall/stage_seconds); the
//                            acceptance number: >= 20 at shards >= 2
//   spread, epsilon_spent    merged-result headline (identical between
//                            the overlap and serialized runs — checked)
//
// Environment:
//   BENCH_SHARD_OUT    output path (default BENCH_shard.json)
//   BENCH_SHARD_SCALE  dataset scale multiplier (default 2.0)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/privim.h"
#include "graph/datasets.h"
#include "graph/subgraph.h"
#include "shard/shard_runner.h"

namespace privim {
namespace {

constexpr uint64_t kSeed = 42;

struct Row {
  size_t shards = 0;
  size_t threads = 0;
  double overlap_wall_seconds = 0;
  double serial_wall_seconds = 0;
  double stage_seconds = 0;
  double savings_pct = 0;
  double spread = 0;
  double epsilon_spent = 0;
};

std::string RowJson(const Row& r) {
  return StrFormat(
      "    {\"shards\": %zu, \"threads\": %zu, "
      "\"overlap_wall_seconds\": %.3f, \"serial_wall_seconds\": %.3f, "
      "\"stage_seconds\": %.3f, \"savings_pct\": %.1f, "
      "\"spread\": %.2f, \"epsilon_spent\": %.4f}",
      r.shards, r.threads, r.overlap_wall_seconds, r.serial_wall_seconds,
      r.stage_seconds, r.savings_pct, r.spread, r.epsilon_spent);
}

int RunAll() {
  const char* out_env = std::getenv("BENCH_SHARD_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_shard.json";
  const char* scale_env = std::getenv("BENCH_SHARD_SCALE");
  const double scale = scale_env != nullptr ? std::atof(scale_env) : 2.0;

  // The privim_cli / privim_shard graph protocol: synthesize, then 50/50
  // node-split into train and eval halves. Email (avg degree ~25) rather
  // than a sparser social graph: an 8-shard node partition keeps ~1/8 of
  // the arcs, and the per-shard graphs must stay dense enough to sample
  // (docs/sharding.md, "choosing n under sharding").
  Rng gen_rng(kSeed);
  Graph full = bench::DieOnError(
      MakeDataset(DatasetId::kEmail, gen_rng, scale), "dataset synthesis");
  Rng split_rng(kSeed + 1);
  NodeSplit split = bench::DieOnError(
      SplitNodes(full.num_nodes(), split_rng), "node split");
  Subgraph train_sub =
      bench::DieOnError(InduceSubgraph(full, split.train), "train half");
  Subgraph eval_sub =
      bench::DieOnError(InduceSubgraph(full, split.test), "eval half");
  std::cerr << "bench_shard: Email x" << scale << " — train "
            << train_sub.local.num_nodes() << " nodes, eval "
            << eval_sub.local.num_nodes() << " nodes\n";

  std::vector<std::string> rows;
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    for (const size_t threads : {1u, 8u}) {
      PrivImConfig cfg = MakeDefaultConfig(Method::kPrivImStar, 2.0,
                                           train_sub.local.num_nodes());
      cfg.seed_count = 20;
      cfg.runtime.num_threads = threads;
      // Node-disjoint sharding keeps ~1/shards of the arcs, so per-shard
      // graphs are sparser than the full graph; the paper-default n = 40
      // subgraphs are unreachable inside an 8-shard partition. One
      // shard-feasible size across the whole grid keeps rows comparable
      // (docs/sharding.md, "choosing n under sharding").
      cfg.freq.subgraph_size = 10;
      cfg.rwr.subgraph_size = 10;

      ShardRunOptions options;
      options.num_shards = shards;
      options.seed = kSeed;

      Row row;
      row.shards = shards;
      row.threads = threads;

      options.overlap.overlap = true;
      ShardRunner overlapped(train_sub.local, eval_sub.local, cfg, options);
      ShardedRunResult with = bench::DieOnError(
          overlapped.Run(), "overlapped sharded run");
      row.overlap_wall_seconds = with.wall_seconds;
      row.stage_seconds = with.stage_seconds;
      row.spread = with.spread;
      row.epsilon_spent = with.epsilon_spent;

      options.overlap.overlap = false;
      ShardRunner serialized(train_sub.local, eval_sub.local, cfg, options);
      ShardedRunResult without = bench::DieOnError(
          serialized.Run(), "serialized sharded run");
      row.serial_wall_seconds = without.wall_seconds;
      // Wall vs the sum of per-stage times: the stage timers prove how
      // much of the serialized stage cost the scheduler hid. (Run-vs-run
      // wall ratios only diverge on multi-core hosts; this metric is
      // meaningful on any core count — docs/sharding.md.)
      row.savings_pct =
          row.stage_seconds > 0.0
              ? 100.0 * (1.0 - row.overlap_wall_seconds /
                                   row.stage_seconds)
              : 0.0;

      // The scheduler is pure scheduling: results must not move.
      if (with.seeds != without.seeds ||
          with.epsilon_spent != without.epsilon_spent) {
        std::cerr << "bench_shard: overlap changed results at shards="
                  << shards << " threads=" << threads << "\n";
        return 1;
      }

      std::cerr << RowJson(row) << "\n";
      rows.push_back(RowJson(row));
    }
  }

  std::string json = "{\n  \"bench\": \"shard\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += rows[i];
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_shard: cannot write " << out_path << "\n";
    return 1;
  }
  out << json;
  std::cerr << "bench_shard: wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace privim

int main() { return privim::RunAll(); }
