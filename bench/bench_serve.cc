// Closed-loop load generator for the online serving layer (src/serve/).
//
// Drives a Server with the standard request mixes (serve/harness.h) at
// 1, 2, and 8 worker threads over two graphs — a synthetic 100k-node
// Watts-Strogatz ring ("WS-100k") and the HepPh citation graph — and
// writes QPS plus p50/p95/p99 latency per (dataset, mix, threads) cell to
// BENCH_serve.json (docs/performance.md records a summary).
//
// Closed loop: each client keeps exactly one request outstanding, so
// offered load adapts to capacity and the latency quantiles are free of
// coordinated-omission bias. Clients outnumber workers at every thread
// count (2x), keeping every worker busy without flooding the queue.
//
// Environment:
//   BENCH_SERVE_REQUESTS  requests per client per cell (default 200)
//   BENCH_SERVE_OUT       output path (default BENCH_serve.json)
//   PRIVIM_BENCH_SCALE    shrinks the graphs for smoke runs (e.g. 0.05)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "nn/features.h"
#include "nn/gnn.h"
#include "serve/harness.h"
#include "serve/server.h"

namespace privim {
namespace {

size_t RequestsFromEnv() {
  const char* env = std::getenv("BENCH_SERVE_REQUESTS");
  if (env == nullptr) return 200;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : 200;
}

std::string OutPathFromEnv() {
  const char* env = std::getenv("BENCH_SERVE_OUT");
  return env != nullptr ? std::string(env) : std::string("BENCH_serve.json");
}

std::shared_ptr<const ModelSnapshot> RandomSnapshot(const Graph& g,
                                                    uint64_t seed) {
  GnnConfig cfg;
  cfg.type = GnnType::kGrat;
  cfg.in_dim = kNodeFeatureDim;
  Rng rng(seed);
  auto model = std::make_unique<GnnModel>(cfg, rng);
  return bench::DieOnError(ModelSnapshot::FromModel(std::move(model), g),
                           "snapshot build");
}

struct Cell {
  std::string dataset;
  std::string mix;
  size_t threads = 0;
  LoadReport report;
};

void AppendJson(std::string& out, const Cell& cell) {
  out += StrFormat(
      "    {\"dataset\": \"%s\", \"mix\": \"%s\", \"threads\": %zu, "
      "\"completed\": %zu, \"rejected\": %zu, \"failed\": %zu, "
      "\"wall_seconds\": %.6f, \"qps\": %.1f, "
      "\"latency_p50_ms\": %.4f, \"latency_p95_ms\": %.4f, "
      "\"latency_p99_ms\": %.4f, \"latency_mean_ms\": %.4f}",
      cell.dataset.c_str(), cell.mix.c_str(), cell.threads,
      cell.report.completed, cell.report.rejected, cell.report.failed,
      cell.report.wall_seconds, cell.report.qps,
      cell.report.latency_p50 * 1e3, cell.report.latency_p95 * 1e3,
      cell.report.latency_p99 * 1e3, cell.report.latency_mean * 1e3);
}

void RunDataset(const std::string& name, const Graph& g,
                size_t requests_per_client, std::vector<Cell>& cells) {
  std::cout << name << ": " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";
  const auto snapshot = RandomSnapshot(g, /*seed=*/17);
  const std::vector<RequestMix> mixes =
      StandardMixes(g.num_nodes(), /*seed=*/23);

  for (const size_t threads : {1u, 2u, 8u}) {
    ServeConfig cfg;
    cfg.num_threads = threads;
    cfg.queue_capacity = 1024;
    cfg.rr_sketch_sets = 2048;
    Server server(g, cfg);
    bench::DieOnError(server.SwapSnapshot(snapshot), "snapshot swap");
    bench::DieOnError(server.Start(), "server start");

    for (const RequestMix& mix : mixes) {
      LoadConfig load;
      load.num_clients = 2 * threads;
      load.requests_per_client = requests_per_client;
      load.warmup_per_client = 8;
      Cell cell;
      cell.dataset = name;
      cell.mix = mix.name;
      cell.threads = threads;
      cell.report = bench::DieOnError(
          RunClosedLoopLoad(server, mix, load),
          StrFormat("load run %s/%s", name.c_str(), mix.name.c_str()));
      std::cout << StrFormat(
          "  %-16s threads=%zu  qps=%9.1f  p50=%8.3fms  p95=%8.3fms  "
          "p99=%8.3fms  rejected=%zu\n",
          mix.name.c_str(), threads, cell.report.qps,
          cell.report.latency_p50 * 1e3, cell.report.latency_p95 * 1e3,
          cell.report.latency_p99 * 1e3, cell.report.rejected);
      cells.push_back(std::move(cell));
    }
    server.Stop();
  }
}

void Run() {
  const size_t requests = RequestsFromEnv();
  const double scale = ScaleFromEnv();
  PrintBenchHeader("Serving layer: closed-loop load, QPS and latency",
                   /*repeats=*/1);

  std::vector<Cell> cells;
  {
    Rng rng(101);
    const size_t n =
        std::max<size_t>(static_cast<size_t>(100000 * scale), 1000);
    Graph ws = bench::DieOnError(WattsStrogatz(n, 5, 0.05, rng),
                                 "WattsStrogatz");
    RunDataset("WS-100k", ws, requests, cells);
  }
  {
    Rng rng(102);
    Graph hepph = bench::DieOnError(
        MakeDataset(DatasetId::kHepPh, rng, scale), "MakeDataset HepPh");
    RunDataset("HepPh", hepph, requests, cells);
  }

  const std::string out_path = OutPathFromEnv();
  std::string json = "{\n  \"bench\": \"serve\",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendJson(json, cells[i]);
    json += (i + 1 < cells.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    std::exit(1);
  }
  out << json;
  std::cout << "\nwrote " << cells.size() << " cells to " << out_path
            << "\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
