// Reproduces Figure 14 (Appendix J): influence spread of all methods on
// HepPh, varying the privacy budget epsilon from 1 to 6.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace privim {
namespace {

void Run() {
  const size_t repeats = RepeatsFromEnv(3);
  PrintBenchHeader("Figure 14: Influence spread on HepPh, varying epsilon", repeats);
    const double scale = ScaleFromEnv();
  const std::vector<double> epsilons = {1, 2, 3, 4, 5, 6};

  DatasetInstance instance = bench::DieOnError(
      PrepareDataset(DatasetId::kHepPh, /*seed=*/9000, 50, 1, scale),
      "PrepareDataset HepPh");

  TablePrinter table({"Method", "eps=1", "eps=2", "eps=3", "eps=4",
                      "eps=5", "eps=6"});
  table.AddRow("CELF (ground truth)",
               std::vector<double>(epsilons.size(), instance.celf_spread),
               1);
  {
    PrivImConfig cfg = MakeDefaultConfig(
        Method::kNonPrivate, 1.0, instance.train_graph.num_nodes());
    MethodEval eval = bench::DieOnError(
        EvaluateMethod(instance, cfg, repeats, /*seed=*/89), "Non-Private");
    table.AddRow("Non-Private",
                 std::vector<double>(epsilons.size(), eval.mean_spread),
                 1);
  }
  for (Method method : {Method::kPrivImStar, Method::kPrivIm,
                        Method::kHpGrat, Method::kHp, Method::kEgn}) {
    std::vector<double> row;
    for (double eps : epsilons) {
      PrivImConfig cfg = MakeDefaultConfig(
          method, eps, instance.train_graph.num_nodes());
      MethodEval eval = bench::DieOnError(
          EvaluateMethod(instance, cfg, repeats, /*seed=*/97),
          MethodName(method));
      row.push_back(eval.mean_spread);
    }
    table.AddRow(MethodName(method), row, 1);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): PrivIM* consistently on top, "
               "widest margin at small epsilon.\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
