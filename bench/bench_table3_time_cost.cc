// Reproduces Table III: computational time cost (preprocessing and
// per-epoch training) of PrivIM*, PrivIM, HP-GRAT and EGN over the six
// main datasets.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace privim {
namespace {

void Run() {
  const size_t repeats = RepeatsFromEnv(1);
  PrintBenchHeader("Table III: Computational time cost (seconds)", repeats);
    const double scale = ScaleFromEnv();

  std::vector<std::string> headers = {"Method", "Phase"};
  std::vector<DatasetInstance> instances;
  for (const DatasetSpec& spec : MainDatasetSpecs()) {
    headers.push_back(spec.name);
    instances.push_back(bench::DieOnError(
        PrepareDataset(spec.id, /*seed=*/7000, 50, 1, scale),
        "PrepareDataset " + spec.name));
  }
  TablePrinter table(headers);

  for (Method method : {Method::kPrivImStar, Method::kPrivIm,
                        Method::kHpGrat, Method::kEgn}) {
    std::vector<double> preprocessing, per_epoch;
    for (const DatasetInstance& instance : instances) {
      PrivImConfig cfg = MakeDefaultConfig(
          method, 3.0, instance.train_graph.num_nodes());
      MethodEval eval = bench::DieOnError(
          EvaluateMethod(instance, cfg, repeats, /*seed=*/79),
          MethodName(method) + " on " + instance.spec.name);
      preprocessing.push_back(eval.mean_preprocessing_seconds);
      per_epoch.push_back(eval.mean_per_epoch_seconds);
    }
    auto add_phase_row = [&](const std::string& phase,
                             const std::vector<double>& values) {
      std::vector<std::string> row = {MethodName(method), phase};
      for (double v : values) row.push_back(FormatDouble(v, 4));
      table.AddRow(std::move(row));
    };
    add_phase_row("Preprocessing", preprocessing);
    add_phase_row("Per-epoch Training", per_epoch);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): PrivIM* pays more preprocessing "
               "(frequency bookkeeping, no\nprojection) but trains faster "
               "per epoch than HP-GRAT/EGN, whose unconstrained sampling\n"
               "yields more subgraphs. Absolute numbers differ (CPU vs the "
               "paper's GPU).\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
