// Reproduces Table III: computational time cost (preprocessing and
// per-epoch training) of PrivIM*, PrivIM, HP-GRAT and EGN over the six
// main datasets. Timings are medians over PRIVIM_REPEATS runs on the
// monotonic clock.
//
// Usage: bench_table3_time_cost [--threads=N] [--telemetry=PATH]
//   --threads=N      worker parallelism for sampling/training/evaluation
//                    (results are bit-identical for every N; default: the
//                    PRIVIM_THREADS env var, else serial).
//   --telemetry=PATH accumulate run telemetry across every method/dataset
//                    cell and write it as JSON (plus a printed summary).

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "runtime/runtime.h"

namespace privim {
namespace {

void Run(size_t num_threads, const std::string& telemetry_path) {
  const size_t repeats = RepeatsFromEnv(1);
  PrintBenchHeader("Table III: Computational time cost (seconds)", repeats);
  const double scale = ScaleFromEnv();
  std::cout << "threads: " << ResolveNumThreads(num_threads) << "\n\n";

  std::vector<std::string> headers = {"Method", "Phase"};
  std::vector<DatasetInstance> instances;
  for (const DatasetSpec& spec : MainDatasetSpecs()) {
    headers.push_back(spec.name);
    instances.push_back(bench::DieOnError(
        PrepareDataset(spec.id, /*seed=*/7000, 50, 1, scale),
        "PrepareDataset " + spec.name));
  }
  TablePrinter table(headers);
  RunTelemetry telemetry;

  for (Method method : {Method::kPrivImStar, Method::kPrivIm,
                        Method::kHpGrat, Method::kEgn}) {
    std::vector<double> preprocessing, per_epoch;
    for (const DatasetInstance& instance : instances) {
      PrivImConfig cfg = MakeDefaultConfig(
          method, 3.0, instance.train_graph.num_nodes());
      cfg.runtime.num_threads = num_threads;
      MethodEval eval = bench::DieOnError(
          EvaluateMethod(instance, cfg, repeats, /*seed=*/79,
                         telemetry_path.empty() ? nullptr : &telemetry),
          MethodName(method) + " on " + instance.spec.name);
      preprocessing.push_back(eval.median_preprocessing_seconds);
      per_epoch.push_back(eval.median_per_epoch_seconds);
    }
    auto add_phase_row = [&](const std::string& phase,
                             const std::vector<double>& values) {
      std::vector<std::string> row = {MethodName(method), phase};
      for (double v : values) row.push_back(FormatDouble(v, 4));
      table.AddRow(std::move(row));
    };
    add_phase_row("Preprocessing", preprocessing);
    add_phase_row("Per-epoch Training", per_epoch);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): PrivIM* pays more preprocessing "
               "(frequency bookkeeping, no\nprojection) but trains faster "
               "per epoch than HP-GRAT/EGN, whose unconstrained sampling\n"
               "yields more subgraphs. Absolute numbers differ (CPU vs the "
               "paper's GPU).\n";

  if (!telemetry_path.empty()) {
    std::cout << "\n";
    telemetry.PrintSummary(std::cout);
    const Status status = telemetry.WriteJsonFile(telemetry_path);
    if (!status.ok()) {
      std::cerr << status << "\n";
      std::exit(1);
    }
    std::cout << "telemetry written to " << telemetry_path << "\n";
  }
}

}  // namespace
}  // namespace privim

int main(int argc, char** argv) {
  size_t num_threads = 0;  // 0 = global runtime default.
  std::string telemetry_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = static_cast<size_t>(std::atol(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
      telemetry_path = argv[i] + 12;
    } else {
      std::cerr << "unknown argument '" << argv[i]
                << "' (supported: --threads=N, --telemetry=PATH)\n";
      return 1;
    }
  }
  privim::Run(num_threads, telemetry_path);
  return 0;
}
