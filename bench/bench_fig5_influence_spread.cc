// Reproduces Figure 5 (and Figure 14's HepPh panel lives in its own
// binary): influence spread of all methods over the datasets, varying the
// privacy budget epsilon from 1 to 6. Friendster is processed as the paper
// does — partitioned — and the per-partition spreads are summed.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"

namespace privim {
namespace {

const std::vector<double> kEpsilons = {1, 2, 3, 4, 5, 6};
const std::vector<Method> kPrivateMethods = {
    Method::kPrivImStar, Method::kPrivIm, Method::kHpGrat, Method::kHp,
    Method::kEgn};

void RunDataset(const DatasetSpec& spec, size_t repeats, double scale) {
  std::cout << "--- " << spec.name << " (k=50, w=1, j=1) ---\n";
  std::vector<TablePrinter> partial;
  TablePrinter table({"Method", "eps=1", "eps=2", "eps=3", "eps=4",
                      "eps=5", "eps=6"});

  // Friendster is partitioned (paper Section V-A); everything else is one
  // partition.
  std::vector<DatasetInstance> parts;
  for (size_t p = 0; p < spec.partitions; ++p) {
    parts.push_back(bench::DieOnError(
        PrepareDataset(spec.id, /*seed=*/1000 + 17 * p, /*seed_count=*/50,
                       /*eval_steps=*/1, scale),
        "PrepareDataset " + spec.name));
  }
  double celf_total = 0.0;
  for (const DatasetInstance& part : parts) celf_total += part.celf_spread;

  auto eval_sum = [&](Method method, double epsilon) {
    double total = 0.0;
    for (size_t p = 0; p < parts.size(); ++p) {
      PrivImConfig cfg = MakeDefaultConfig(
          method, epsilon, parts[p].train_graph.num_nodes());
      MethodEval eval = bench::DieOnError(
          EvaluateMethod(parts[p], cfg, repeats, /*seed=*/7 + 13 * p),
          MethodName(method) + " on " + spec.name);
      total += eval.mean_spread;
    }
    return total;
  };

  table.AddRow("CELF (ground truth)",
               std::vector<double>(kEpsilons.size(), celf_total), 1);
  const double non_private = eval_sum(Method::kNonPrivate, 1.0);
  table.AddRow("Non-Private",
               std::vector<double>(kEpsilons.size(), non_private), 1);
  for (Method method : kPrivateMethods) {
    std::vector<double> row;
    row.reserve(kEpsilons.size());
    for (double eps : kEpsilons) row.push_back(eval_sum(method, eps));
    table.AddRow(MethodName(method), row, 1);
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void Run() {
  const size_t repeats = RepeatsFromEnv(3);
  PrintBenchHeader("Figure 5: Influence spread of all methods, varying epsilon", repeats);
    const double scale = ScaleFromEnv();
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.id == DatasetId::kHepPh) continue;  // Figure 14 binary.
    RunDataset(spec, repeats, scale);
  }
  std::cout << "Expected shape (paper): Non-Private ~= CELF; PrivIM* > "
               "PrivIM > HP-GRAT > HP > EGN,\nwith all private methods "
               "improving as epsilon grows.\n";
}

}  // namespace
}  // namespace privim

int main() {
  privim::Run();
  return 0;
}
