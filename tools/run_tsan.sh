#!/usr/bin/env bash
# Builds the project with ThreadSanitizer (-DPRIVIM_SANITIZE=thread) and
# runs the concurrency-relevant test binaries: the runtime suite plus the
# trainer/sampler/IM tests that exercise the parallel code paths.
#
# PRIVIM_THREADS forces the pooled (non-serial) paths even on machines the
# global default would leave serial; TSan then observes real cross-thread
# interleavings of the pool, ParallelFor, the slot free-list and the
# speculative sampler rounds.
#
# Usage: tools/run_tsan.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPRIVIM_SANITIZE=thread \
  -DPRIVIM_BUILD_BENCHMARKS=OFF \
  -DPRIVIM_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target runtime_test core_test sampling_test sampling_properties_test \
  im_test plan_test serve_test shard_test stream_test

export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
export PRIVIM_THREADS=${PRIVIM_THREADS:-4}

"$BUILD_DIR/tests/runtime_test"
"$BUILD_DIR/tests/core_test" --gtest_filter='Trainer*'
# One read-only plan shared by 8 workers, each with a private arena slot —
# the sharing contract TSan exists to check.
"$BUILD_DIR/tests/plan_test" --gtest_filter='*TrainerPlanTest*'
"$BUILD_DIR/tests/sampling_test" \
  --gtest_filter='SamplerDeterminism*:FreqSampler*:RwrSampler*:GoldenDeterminism*'
"$BUILD_DIR/tests/sampling_properties_test"
"$BUILD_DIR/tests/im_test" \
  --gtest_filter='EstimateIcSpread*:IcCascade*:RrSketch*:MonteCarloOracle*'
# The serving layer's concurrency surface: MPMC request queue, worker
# pumps on the thread pool, and the snapshot hot-swap torture suite
# (clients query at 2 and 8 workers while a swapper flips the published
# model; every response must be attributable to exactly one snapshot).
"$BUILD_DIR/tests/serve_test"
# The sharded pipeline's concurrency surface: the overlap scheduler's
# dedicated stage threads, concurrent shard tasks reading the partitioned
# graphs (the eager-in-CSR invariant — a lazy EnsureInCsr here would be a
# data race, tests/shard/shard_pipeline_test.cc), and the merge of
# per-shard results back onto the orchestration thread.
"$BUILD_DIR/tests/shard_test"
# The streaming pipeline's concurrency surface: parallel RR-set repair
# workers regenerating disjoint sets of one shared sketch, the retraining
# rounds re-entering the (threaded) Pipeline facade, and the PublishTo
# handoff of a freshly compacted graph into the server's RCU-style
# published state while query workers hold references.
"$BUILD_DIR/tests/stream_test"

echo "TSan run clean."
