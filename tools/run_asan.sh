#!/usr/bin/env bash
# Builds the project with AddressSanitizer (-DPRIVIM_SANITIZE=address) and
# runs the memory-relevant test binaries: the obs metrics/telemetry suite,
# the sampler and seed-selection regression tests, and the compiled-plan
# differential suites (plan_test), whose arena indexing and in-place
# backward schedules are exactly the kind of raw-offset code ASan is for.
#
# The sampler tests include the restrict_to out-of-bounds regressions
# (FreqSampler/RwrSampler used to index per-node vectors with unvalidated
# ids — exactly the class of bug ASan exists to catch), and the obs tests
# hammer the lock-free instruments from multiple threads.
#
# Usage: tools/run_asan.sh [extra gtest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPRIVIM_SANITIZE=address \
  -DPRIVIM_BUILD_BENCHMARKS=OFF \
  -DPRIVIM_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target obs_test sampling_test sampling_properties_test im_test \
  plan_test simd_test serve_test scale_test shard_test stream_test

export ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}
export PRIVIM_THREADS=${PRIVIM_THREADS:-4}

"$BUILD_DIR/tests/obs_test"
"$BUILD_DIR/tests/sampling_test" \
  --gtest_filter='FreqSampler*:RwrSampler*:SamplerDeterminism*:GoldenDeterminism*:RwrBall*'
"$BUILD_DIR/tests/sampling_properties_test"
"$BUILD_DIR/tests/im_test" \
  --gtest_filter='Celf*:Greedy*:InstrumentedOracle*'
"$BUILD_DIR/tests/plan_test"
# SIMD kernels + fused executor (ISSUE 8): masked tail loads, gathered row
# offsets, and the fused sweep's stage pointers are raw-index code on
# arena memory — the kernel differential harness runs every tier the host
# supports with ASan watching the remainder lanes.
"$BUILD_DIR/tests/simd_test"
# Serving layer: pooled per-worker scratch, arena-backed inference, and
# borrowed request/response/completion pointers crossing the queue — all
# raw-lifetime code worth a memory-clean run.
"$BUILD_DIR/tests/serve_test"
# Sharded pipeline (src/shard/): per-shard graphs built through the
# streaming partitioner, borrowed-graph shard tasks, and the overlap
# scheduler's cross-thread stage handoff — raw-lifetime code that must
# stay memory-clean while shards run concurrently.
"$BUILD_DIR/tests/shard_test"
# Streaming pipeline (src/stream/): the delta's overlay rows, the view's
# two-pointer row merges over spans of base storage, and the in-place
# regeneration of repaired RR sets share buffers across repair worker
# threads — raw-lifetime code that must stay memory-clean while the
# stream mutates under it.
"$BUILD_DIR/tests/stream_test"
# Million-node O(ball) properties (ctest label `scale`, env-gated): the
# streaming two-pass build, the blocked arc storage, and the lazy in-CSR
# scatter are exactly the raw-offset code paths where an off-by-one only
# shows up at scale — run them where ASan can see it.
PRIVIM_SCALE_TESTS=1 "$BUILD_DIR/tests/scale_test"

echo "ASan run clean."
