#!/usr/bin/env bash
# One-command verification ladder, in increasing cost:
#
#   1. tier-1: Release build + the full unit/property ctest suite
#      (labels: `ctest -L unit`, `-L property`, `-L sanitizer` select
#      subsets; see tests/CMakeLists.txt);
#   2. ASan:   sampler / influence suites under AddressSanitizer
#              (tools/run_asan.sh, -DPRIVIM_SANITIZE=address);
#   3. TSan:   runtime / sampler / IM suites under ThreadSanitizer
#              (tools/run_tsan.sh, -DPRIVIM_SANITIZE=thread).
#
# Stages 2 and 3 configure their own build trees (build-asan/, build-tsan/)
# and force PRIVIM_THREADS=4 so the pooled scratch workspaces and the
# speculative sampler rounds run genuinely parallel under the sanitizers.
#
# Usage: tools/run_checks.sh [--tier1-only]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

echo "== stage 1/3: tier-1 build + ctest =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "Tier-1 clean (sanitizer stages skipped)."
  exit 0
fi

echo "== stage 2/3: AddressSanitizer =="
BUILD_DIR=build-asan tools/run_asan.sh

echo "== stage 3/3: ThreadSanitizer =="
BUILD_DIR=build-tsan tools/run_tsan.sh

echo "All checks clean."
