#!/usr/bin/env bash
# One-command verification ladder, in increasing cost:
#
#   1. tier-1: Release build + the full unit/property ctest suite
#      (labels: `ctest -L unit`, `-L property`, `-L sanitizer`, `-L ckpt`,
#      `-L plan`, `-L serve` select subsets; see tests/CMakeLists.txt),
#      then the zero-allocation gates (bench_micro's PlanSteadyStateAllocs
#      and ServeSteadyStateAllocs cases exit nonzero if the plan runtime
#      or the warm serving path heap-allocates in steady state), and the
#      scale smoke (bench_micro's ScaleSmoke case gates a million-node
#      streaming build at 1.2x-of-CSR peak memory, then the O(ball)
#      property suite runs via `PRIVIM_SCALE_TESTS=1 ctest -L scale`);
#   2. ckpt:   examples build + the checkpoint/resume fault-injection
#              suite (kill-and-resume bit-identity, tests/ckpt/) under
#              AddressSanitizer;
#   3. ASan:   sampler / influence suites under AddressSanitizer
#              (tools/run_asan.sh, -DPRIVIM_SANITIZE=address);
#   4. TSan:   runtime / sampler / IM suites under ThreadSanitizer
#              (tools/run_tsan.sh, -DPRIVIM_SANITIZE=thread);
#   5. UBSan:  the SIMD kernel / plan differential suites under
#              UndefinedBehaviorSanitizer (-DPRIVIM_SANITIZE=undefined) —
#              tail masking, raw arena offsets, and intrinsics-adjacent
#              pointer math are where UB would hide.
#
# Stages 2-5 configure their own build trees (build-asan/, build-tsan/,
# build-ubsan/) and force PRIVIM_THREADS=4 so the pooled scratch
# workspaces and the speculative sampler rounds run genuinely parallel
# under the sanitizers.
#
# Usage: tools/run_checks.sh [--tier1-only]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

echo "== stage 1/5: tier-1 build + ctest =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure

echo "== stage 1b: zero-allocation gates (plan + serve) =="
# Runs full steady-state training iterations AND warm mixed-type serving
# queries under a counting allocator (global operator new replacement in
# bench/bench_micro.cc) and exits nonzero on the first heap allocation —
# the contracts tensor/plan.h and serve/query_engine.h make once warm.
"$BUILD_DIR/bench/bench_micro" \
  --benchmark_filter='SteadyStateAllocs' --benchmark_min_time=0.05

echo "== stage 1c: scale smoke (million-node build + sampling) =="
# Streams a 10^6-node generator graph through the two-pass build with the
# byte-tracking allocator armed — the binary exits nonzero if the build's
# peak heap growth exceeds 1.2x the finished CSR (graph/graph.h,
# docs/scale.md) — then runs a warm million-node RWR round. The full
# O(ball) property suite is `PRIVIM_SCALE_TESTS=1 ctest -L scale`.
"$BUILD_DIR/bench/bench_micro" --benchmark_filter='ScaleSmoke'
PRIVIM_SCALE_TESTS=1 ctest --test-dir "$BUILD_DIR" -L scale \
  --output-on-failure

echo "== stage 1d: SIMD differential suites, native + forced-scalar =="
# `ctest -L simd` selects the kernel differential harness, the fusion-pass
# tests, the PRIVIM_FORCE_ISA dispatch tests, and the end-to-end trainer
# tolerance suite (tests/CMakeLists.txt). The native rung runs whatever
# tier the host CPU dispatches to; the forced-scalar rung proves the whole
# ladder degrades cleanly to the reference kernels (the configuration a
# bit-identity bisection would run in, docs/performance.md).
ctest --test-dir "$BUILD_DIR" -L simd -j"$(nproc)" --output-on-failure
PRIVIM_FORCE_ISA=scalar ctest --test-dir "$BUILD_DIR" -L simd \
  -j"$(nproc)" --output-on-failure

echo "== stage 1e: sharded pipeline suite + overlap-scheduler gate =="
# `ctest -L shard` selects the src/shard/ suite (partitioner invariants,
# merge determinism across shards x threads x repeats, shards=1 == serial
# bit-identity, the Pipeline facade contracts). The bench_micro
# ShardOverlap case then runs the real 2-shard pipeline and exits nonzero
# unless the overlap scheduler hides >= 20% of the serialized stage cost
# (the wall-vs-stage-sum methodology of docs/sharding.md).
ctest --test-dir "$BUILD_DIR" -L shard -j"$(nproc)" --output-on-failure
"$BUILD_DIR/bench/bench_micro" --benchmark_filter='ShardOverlap'

echo "== stage 1f: streaming pipeline suite + O(ball) update gate =="
# `ctest -L stream` selects the src/stream/ suite (GraphDelta/GraphView
# overlay semantics, incremental-vs-full RR-sketch bit-identity at threads
# {1,8}, continual-observation epsilon monotonicity, kill-and-resume
# bit-identity, the graph+model serving hot swap). The bench_micro
# StreamUpdate case then applies real update batches to a 50k-node graph
# and exits nonzero if a 16-event batch repairs more than 25% of the
# resident sketch — the O(ball) locality contract of docs/streaming.md.
ctest --test-dir "$BUILD_DIR" -L stream -j"$(nproc)" --output-on-failure
"$BUILD_DIR/bench/bench_micro" --benchmark_filter='StreamUpdate'

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "Tier-1 clean (sanitizer stages skipped)."
  exit 0
fi

echo "== stage 2/5: examples + checkpoint fault injection under ASan =="
# The examples double as API smoke tests: they exercise the documented
# public surface (docs/api.md) and must keep building against it.
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPRIVIM_SANITIZE=address \
  -DPRIVIM_BUILD_BENCHMARKS=OFF \
  -DPRIVIM_BUILD_EXAMPLES=ON
cmake --build build-asan -j"$(nproc)" --target \
  quickstart viral_marketing parameter_tuning privacy_accounting \
  diffusion_models ckpt_test ckpt_resume_test
# resume_test kills the pipeline at every commit point (including a hard
# _exit in a forked child) and demands bit-identical resumption — under
# ASan so the restore paths are also memory-clean.
ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1} \
  PRIVIM_THREADS=${PRIVIM_THREADS:-4} \
  build-asan/tests/ckpt_test
ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1} \
  PRIVIM_THREADS=${PRIVIM_THREADS:-4} \
  build-asan/tests/ckpt_resume_test

echo "== stage 3/5: AddressSanitizer =="
BUILD_DIR=build-asan tools/run_asan.sh

echo "== stage 4/5: ThreadSanitizer =="
BUILD_DIR=build-tsan tools/run_tsan.sh

echo "== stage 5/5: UndefinedBehaviorSanitizer (SIMD + plan suites) =="
# -fno-sanitize-recover=undefined (CMakeLists.txt) makes any UB finding
# fatal. simd_test covers the vector kernels' tail handling on every tier
# the host supports plus the fused executor; plan_test re-proves the
# scalar bit-identity contract under instrumentation.
cmake -B build-ubsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPRIVIM_SANITIZE=undefined \
  -DPRIVIM_BUILD_BENCHMARKS=OFF \
  -DPRIVIM_BUILD_EXAMPLES=OFF
cmake --build build-ubsan -j"$(nproc)" --target simd_test plan_test
PRIVIM_THREADS=${PRIVIM_THREADS:-4} build-ubsan/tests/simd_test
PRIVIM_FORCE_ISA=scalar PRIVIM_THREADS=${PRIVIM_THREADS:-4} \
  build-ubsan/tests/simd_test
PRIVIM_THREADS=${PRIVIM_THREADS:-4} build-ubsan/tests/plan_test

echo "All checks clean."
