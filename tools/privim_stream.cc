// privim_stream: replay a timestamped update stream through the
// dynamic-graph pipeline (src/stream/, docs/streaming.md) — a mutable
// GraphDelta overlay absorbs each batch, the resident RR sketch repairs
// incrementally (bit-identical to a full rebuild), drift/staleness
// triggers re-enter DP-GNN training through the Pipeline facade, and the
// continual-observation ledger composes epsilon across rounds. Emits the
// utility-vs-time-vs-epsilon curve.
//
//   privim_stream --dataset LastFM --batches 50 --epsilon 2
//   privim_stream --batches 100 --retrain-drift 0.05 --curves curve.json
//   privim_stream --batches 40 --checkpoint-dir ck/ --resume
//
// A killed run restarted with --resume continues bit-identically from the
// last completed batch — tested in tests/stream/.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/driver_options.h"
#include "core/privim.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "stream/stream_pipeline.h"

namespace privim {
namespace {

struct StreamCliOptions {
  std::string dataset = "LastFM";
  std::string edge_list;
  bool undirected = false;
  std::string method = "PrivIM*";
  double epsilon = 2.0;
  size_t k = 50;
  double scale = 1.0;
  size_t batches = 20;
  size_t updates_per_batch = 64;
  double add_fraction = 0.6;
  double retrain_drift = 0.1;
  size_t retrain_every = 0;
  size_t sketch_sets = 256;
  int utility_steps = 1;
  std::string curves_path;
  DriverOptions driver;
};

void PrintUsage() {
  std::cout <<
      R"(privim_stream — dynamic-graph streaming PrivIM pipeline

  --dataset NAME         synthetic initial graph (Email, Bitcoin, LastFM,
                         HepPh, Facebook, Gowalla, Friendster)  [LastFM]
  --edge-list PATH       load the initial graph from an edge list
  --undirected           treat the edge list as undirected
  --method NAME          PrivIM*, PrivIM, PrivIM+SCS, EGN, HP, HP-GRAT,
                         Non-Private                            [PrivIM*]
  --epsilon X            per-round privacy budget; rounds compose
                         in the continual-observation ledger    [2.0]
  --k N                  seed budget per released set           [50]
  --scale X              synthetic dataset scale multiplier     [1.0]
  --batches N            update batches to replay               [20]
  --updates-per-batch N  events per synthetic batch             [64]
  --add-fraction X       fraction of events adding an edge      [0.6]
  --retrain-drift X      retrain when this fraction of arcs has
                         changed since training (0 disables)    [0.1]
  --retrain-every N      retrain every N batches (0 disables)   [0]
  --sketch-sets N        resident RR-sketch size                [256]
  --utility-steps N      diffusion steps of the utility metric  [1]
  --curves PATH          write the utility-vs-time-vs-epsilon
                         history as JSON rows
)" << DriverOptions::UsageText()
            << "  --help                 this text\n";
}

Result<StreamCliOptions> ParseArgs(int argc, char** argv) {
  StreamCliOptions opts;
  for (int i = 1; i < argc; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(bool shared,
                            opts.driver.TryParse(argc, argv, i));
    if (shared) continue;
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(arg + " requires a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--dataset") {
      PRIVIM_ASSIGN_OR_RETURN(opts.dataset, next());
    } else if (arg == "--edge-list") {
      PRIVIM_ASSIGN_OR_RETURN(opts.edge_list, next());
    } else if (arg == "--undirected") {
      opts.undirected = true;
    } else if (arg == "--method") {
      PRIVIM_ASSIGN_OR_RETURN(opts.method, next());
    } else if (arg == "--epsilon") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.epsilon = std::atof(v.c_str());
    } else if (arg == "--k") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.k = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--scale") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.scale = std::atof(v.c_str());
    } else if (arg == "--batches") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.batches = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--updates-per-batch") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.updates_per_batch = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--add-fraction") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.add_fraction = std::atof(v.c_str());
    } else if (arg == "--retrain-drift") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.retrain_drift = std::atof(v.c_str());
    } else if (arg == "--retrain-every") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.retrain_every = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--sketch-sets") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.sketch_sets = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--utility-steps") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.utility_steps = static_cast<int>(std::atoll(v.c_str()));
    } else if (arg == "--curves") {
      PRIVIM_ASSIGN_OR_RETURN(opts.curves_path, next());
    } else {
      return Status::InvalidArgument("unknown flag " + arg +
                                     " (try --help)");
    }
  }
  if (opts.k == 0) return Status::InvalidArgument("--k must be positive");
  if (opts.epsilon <= 0) {
    return Status::InvalidArgument("--epsilon must be positive");
  }
  if (opts.updates_per_batch == 0) {
    return Status::InvalidArgument("--updates-per-batch must be positive");
  }
  if (opts.add_fraction < 0.0 || opts.add_fraction > 1.0) {
    return Status::InvalidArgument("--add-fraction must be in [0, 1]");
  }
  if (opts.sketch_sets == 0) {
    return Status::InvalidArgument("--sketch-sets must be positive");
  }
  PRIVIM_RETURN_NOT_OK(opts.driver.Validate());
  return opts;
}

Status WriteCurves(const std::vector<StreamStepRecord>& history,
                   const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << "[\n";
  for (size_t i = 0; i < history.size(); ++i) {
    const StreamStepRecord& r = history[i];
    out << "  {\"batch\": " << r.batch
        << ", \"events_applied\": " << r.events_applied
        << ", \"events_skipped\": " << r.events_skipped
        << ", \"repaired_sets\": " << r.repaired_sets
        << ", \"invalidated_balls\": " << r.invalidated_balls
        << ", \"retrained\": " << (r.retrained ? "true" : "false")
        << ", \"visible_nodes\": " << r.visible_nodes
        << ", \"visible_arcs\": " << r.visible_arcs
        << ", \"cumulative_epsilon\": " << r.cumulative_epsilon
        << ", \"utility\": " << r.utility
        << ", \"seconds\": " << r.seconds << "}"
        << (i + 1 < history.size() ? "," : "") << "\n";
  }
  out << "]\n";
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status RunStreamCli(const StreamCliOptions& opts) {
  // ---- Initial graph. ----
  Graph initial;
  std::string source;
  if (!opts.edge_list.empty()) {
    PRIVIM_ASSIGN_OR_RETURN(initial,
                            LoadEdgeList(opts.edge_list, opts.undirected));
    source = opts.edge_list;
  } else {
    PRIVIM_ASSIGN_OR_RETURN(DatasetId id, ParseDatasetId(opts.dataset));
    Rng gen_rng(opts.driver.seed);
    PRIVIM_ASSIGN_OR_RETURN(initial, MakeDataset(id, gen_rng, opts.scale));
    source = GetDatasetSpec(id).name + " (synthetic stand-in)";
  }
  std::cout << "graph: " << source << " — " << initial.num_nodes()
            << " nodes, " << initial.num_edges() << " arcs\n";

  // ---- Stream configuration. ----
  PRIVIM_ASSIGN_OR_RETURN(Method method, ParseMethod(opts.method));
  StreamOptions stream;
  stream.method =
      MakeDefaultConfig(method, opts.epsilon, initial.num_nodes());
  stream.method.seed_count = opts.k;
  stream.method.runtime.num_threads = opts.driver.threads;
  stream.retrain.drift_fraction = opts.retrain_drift;
  stream.retrain.staleness_batches = opts.retrain_every;
  stream.gen.events_per_batch = opts.updates_per_batch;
  stream.gen.add_fraction = opts.add_fraction;
  stream.rr_sketch_sets = opts.sketch_sets;
  stream.utility_steps = opts.utility_steps;
  stream.seed = opts.driver.seed;
  stream.num_threads = opts.driver.threads;
  stream.checkpoint_dir = opts.driver.checkpoint_dir;
  stream.resume = opts.driver.resume;

  PRIVIM_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamPipeline> pipeline,
      StreamPipeline::Build(std::move(initial), std::move(stream)));

  std::cout << "method: " << MethodName(method) << ", per-round epsilon "
            << opts.epsilon << ", sketch " << opts.sketch_sets
            << " sets\n";
  if (pipeline->batches_applied() > 0) {
    std::cout << "resumed at batch " << pipeline->batches_applied()
              << " (epsilon so far "
              << FormatDouble(pipeline->CumulativeEpsilon(), 4) << ")\n";
  }

  // ---- Replay (resume-aware: Step() continues the same pure stream). ----
  while (pipeline->batches_applied() < opts.batches) {
    PRIVIM_ASSIGN_OR_RETURN(StreamStepRecord row, pipeline->Step());
    std::cout << "batch " << row.batch << ": +" << row.events_applied
              << " events (" << row.events_skipped << " skipped), repaired "
              << row.repaired_sets << "/" << pipeline->sketch().num_sets()
              << " sets, " << row.invalidated_balls << " balls dropped"
              << (row.retrained ? ", RETRAINED" : "") << ", utility "
              << FormatDouble(row.utility, 1) << ", epsilon "
              << FormatDouble(row.cumulative_epsilon, 4) << " ["
              << FormatDouble(row.seconds, 3) << "s]\n";
  }

  // ---- Summary: the utility-vs-time-vs-epsilon curve. ----
  const std::vector<StreamStepRecord>& history = pipeline->history();
  std::cout << "\n";
  TablePrinter table(
      {"Batch", "arcs", "repaired", "retrain", "utility", "epsilon"});
  for (const StreamStepRecord& r : history) {
    table.AddRow(StrFormat("%llu", static_cast<unsigned long long>(r.batch)),
                 {static_cast<double>(r.visible_arcs),
                  static_cast<double>(r.repaired_sets),
                  static_cast<double>(r.retrained), r.utility,
                  r.cumulative_epsilon},
                 3);
  }
  table.Print(std::cout);

  std::cout << "\nseeds (" << pipeline->seeds().size() << "):";
  for (size_t i = 0; i < pipeline->seeds().size(); ++i) {
    std::cout << (i == 0 ? " " : ", ") << pipeline->seeds()[i];
  }
  std::cout << "\nretraining rounds: " << pipeline->num_retrains() << "\n";
  if (method != Method::kNonPrivate) {
    std::cout << "privacy: cumulative epsilon "
              << FormatDouble(pipeline->CumulativeEpsilon(), 4)
              << " over " << pipeline->accountant().rounds().size()
              << " composed rounds (continual observation)\n";
  } else {
    std::cout << "privacy: none (epsilon = inf)\n";
  }

  if (!opts.curves_path.empty()) {
    PRIVIM_RETURN_NOT_OK(WriteCurves(history, opts.curves_path));
    std::cout << "curves written to " << opts.curves_path << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace privim

int main(int argc, char** argv) {
  auto opts = privim::ParseArgs(argc, argv);
  if (!opts.ok()) {
    std::cerr << opts.status() << "\n";
    return 2;
  }
  privim::Status status = privim::RunStreamCli(*opts);
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
