// privim_serve: stand up the online influence-query server (src/serve/)
// over a dataset or edge list and drive it with the standard closed-loop
// request mixes, reporting QPS and latency quantiles.
//
//   privim_serve --dataset LastFM --threads 4 --mix mixed
//   privim_serve --edge-list graph.txt --snapshot model.ckpt \
//                --threads 8 --telemetry serve_telemetry.json
//
// With --snapshot the server answers top-k queries from that trained
// checkpoint (the file written by privim_cli --save-model); without it a
// randomly initialized model of the same architecture stands in, which
// exercises the identical serving path — useful for capacity planning
// before a model exists. Queries are DP post-processing either way: the
// checkpoint was trained under the privacy budget, and serving reads it
// without touching training data (docs/serving.md).

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/driver_options.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "nn/features.h"
#include "nn/gnn.h"
#include "obs/telemetry.h"
#include "serve/harness.h"
#include "serve/server.h"
#include "shard/pipeline.h"

namespace privim {
namespace {

struct ServeCliOptions {
  std::string dataset = "LastFM";
  std::string edge_list;
  bool undirected = false;
  std::string snapshot;
  std::string mix = "all";  // all | seed-selection | spread-analytics | mixed
  size_t clients = 0;       // 0 = 2x threads
  size_t requests = 200;    // per client
  size_t sketch_sets = 2048;
  size_t queue_capacity = 1024;
  double scale = 1.0;
  /// Shared driver flags (core/driver_options.h). Serving has no
  /// checkpointable pipeline, so --checkpoint-dir/--resume are rejected.
  DriverOptions driver;

  static constexpr DriverOptions::Features kFeatures{/*checkpoint=*/false};
};

void PrintUsage() {
  std::cout << R"(privim_serve: drive the online influence-query server

  --dataset NAME     synthetic dataset stand-in (Email, Bitcoin, LastFM,
                     Gowalla, HepPh, DBLP)                  [LastFM]
  --edge-list PATH   load a graph from an edge list instead
  --undirected       treat the edge list as undirected
  --snapshot PATH    model checkpoint to serve (privim_cli --save-model);
                     omitted = randomly initialized stand-in model
  --mix NAME         seed-selection, spread-analytics, mixed, or all [all]
  --clients N        closed-loop client threads (0 = 2x workers)    [0]
  --requests N       requests per client                            [200]
  --sketch-sets N    resident RR-sketch size (0 disables sketch) [2048]
  --queue-capacity N admission bound; beyond it clients see
                     ResourceExhausted backpressure             [1024]
  --scale X          synthetic dataset scale multiplier           [1.0]
)" << DriverOptions::UsageText(ServeCliOptions::kFeatures)
            << "  --help             this text\n";
}

Result<ServeCliOptions> ParseArgs(int argc, char** argv) {
  ServeCliOptions opts;
  for (int i = 1; i < argc; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(
        bool shared,
        opts.driver.TryParse(argc, argv, i, ServeCliOptions::kFeatures));
    if (shared) continue;
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(arg + " requires a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--dataset") {
      PRIVIM_ASSIGN_OR_RETURN(opts.dataset, next());
    } else if (arg == "--edge-list") {
      PRIVIM_ASSIGN_OR_RETURN(opts.edge_list, next());
    } else if (arg == "--undirected") {
      opts.undirected = true;
    } else if (arg == "--snapshot") {
      PRIVIM_ASSIGN_OR_RETURN(opts.snapshot, next());
    } else if (arg == "--mix") {
      PRIVIM_ASSIGN_OR_RETURN(opts.mix, next());
    } else if (arg == "--clients") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.clients = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--requests") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.requests = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--sketch-sets") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.sketch_sets = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--queue-capacity") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.queue_capacity = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--scale") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.scale = std::atof(v.c_str());
    } else {
      return Status::InvalidArgument("unknown flag " + arg +
                                     " (see --help)");
    }
  }
  if (opts.requests == 0) {
    return Status::InvalidArgument("--requests must be >= 1");
  }
  PRIVIM_RETURN_NOT_OK(opts.driver.Validate(ServeCliOptions::kFeatures));
  return opts;
}

Status Run(const ServeCliOptions& opts) {
  // ---- Graph. ----
  Graph loaded;
  std::string source;
  if (!opts.edge_list.empty()) {
    // Load out-adjacency only: while the parsed edge buffer is still
    // alive, only half the arc storage exists, which lowers the load-time
    // peak RSS on large resident graphs (docs/scale.md).
    GraphBuildOptions load_opts;
    load_opts.build_in_csr = false;
    PRIVIM_ASSIGN_OR_RETURN(
        loaded, LoadEdgeList(opts.edge_list, opts.undirected, load_opts));
    source = opts.edge_list;
  } else {
    PRIVIM_ASSIGN_OR_RETURN(DatasetId id, ParseDatasetId(opts.dataset));
    Rng graph_rng(opts.driver.seed);
    PRIVIM_ASSIGN_OR_RETURN(loaded,
                            MakeDataset(id, graph_rng, opts.scale));
    source = opts.dataset;
  }
  // The facade materializes the in-CSR (snapshot features read in-degrees
  // and the RR sketch walks in-edges) before the Server freezes the graph
  // as const — its worker threads must never be the first to need it.
  PRIVIM_ASSIGN_OR_RETURN(Pipeline pipeline,
                          Pipeline::BuildForServing(std::move(loaded)));
  const Graph& graph = pipeline.graph();
  std::cout << "graph: " << source << " (" << graph.num_nodes()
            << " nodes, " << graph.num_edges() << " edges)\n";

  // ---- Server. ----
  RunTelemetry telemetry;
  ServeConfig cfg;
  cfg.num_threads = opts.driver.threads;
  cfg.queue_capacity = opts.queue_capacity;
  cfg.rr_sketch_sets = opts.sketch_sets;
  cfg.metrics =
      opts.driver.telemetry_path.empty() ? nullptr : &telemetry.metrics;
  Server server(graph, cfg);

  if (!opts.snapshot.empty()) {
    PRIVIM_ASSIGN_OR_RETURN(const uint64_t id,
                            server.LoadSnapshot(opts.snapshot));
    std::cout << "snapshot: " << opts.snapshot << " (id " << id << ")\n";
  } else {
    GnnConfig gnn;
    gnn.type = GnnType::kGrat;
    gnn.in_dim = kNodeFeatureDim;
    Rng model_rng(opts.driver.seed + 1);
    auto model = std::make_unique<GnnModel>(gnn, model_rng);
    PRIVIM_ASSIGN_OR_RETURN(
        std::shared_ptr<const ModelSnapshot> snap,
        ModelSnapshot::FromModel(std::move(model), graph));
    PRIVIM_RETURN_NOT_OK(server.SwapSnapshot(std::move(snap)));
    std::cout << "snapshot: randomly initialized stand-in model "
                 "(pass --snapshot to serve a trained checkpoint)\n";
  }
  PRIVIM_RETURN_NOT_OK(server.Start());
  std::cout << "serving on " << server.num_threads() << " worker thread"
            << (server.num_threads() == 1 ? "" : "s") << "\n\n";

  // ---- Load. ----
  std::vector<RequestMix> mixes =
      StandardMixes(graph.num_nodes(), opts.driver.seed + 2);
  if (opts.mix != "all") {
    std::vector<RequestMix> selected;
    for (RequestMix& mix : mixes) {
      if (mix.name == opts.mix) selected.push_back(std::move(mix));
    }
    if (selected.empty()) {
      return Status::InvalidArgument(
          StrFormat("unknown mix '%s' (want seed-selection, "
                    "spread-analytics, mixed, or all)",
                    opts.mix.c_str()));
    }
    mixes = std::move(selected);
  }

  LoadConfig load;
  load.num_clients =
      opts.clients != 0 ? opts.clients : 2 * server.num_threads();
  load.requests_per_client = opts.requests;
  load.base_seed = opts.driver.seed + 3;

  TablePrinter table({"Mix", "QPS", "p50 ms", "p95 ms", "p99 ms",
                      "mean ms", "rejected"});
  for (const RequestMix& mix : mixes) {
    PRIVIM_ASSIGN_OR_RETURN(const LoadReport report,
                            RunClosedLoopLoad(server, mix, load));
    if (report.failed != 0) {
      return Status::Internal(StrFormat(
          "%zu queries of mix '%s' failed", report.failed,
          mix.name.c_str()));
    }
    table.AddRow(mix.name,
                 {report.qps, report.latency_p50 * 1e3,
                  report.latency_p95 * 1e3, report.latency_p99 * 1e3,
                  report.latency_mean * 1e3,
                  static_cast<double>(report.rejected)},
                 2);
  }
  server.Stop();
  table.Print(std::cout);

  if (!opts.driver.telemetry_path.empty()) {
    telemetry.PrintSummary(std::cout);
    PRIVIM_RETURN_NOT_OK(
        telemetry.WriteJsonFile(opts.driver.telemetry_path));
    std::cout << "telemetry written to " << opts.driver.telemetry_path
              << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace privim

int main(int argc, char** argv) {
  privim::Result<privim::ServeCliOptions> opts =
      privim::ParseArgs(argc, argv);
  if (!opts.ok()) {
    std::cerr << opts.status().ToString() << "\n";
    return 2;
  }
  const privim::Status status = privim::Run(opts.ValueOrDie());
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
