// Command-line interface to the PrivIM pipeline: pick a dataset (synthetic
// stand-in or an edge-list file), a method and a privacy budget, and get a
// private seed set with full accounting telemetry. Built on the stable
// Pipeline facade (shard/pipeline.h) and the shared driver flags
// (core/driver_options.h) — the same surface privim_shard and privim_serve
// use.
//
// Examples:
//   privim_cli --dataset LastFM --method 'PrivIM*' --epsilon 2
//   privim_cli --edge-list graph.txt --undirected --k 25 --epsilon 1
//   privim_cli --dataset Gowalla --method PrivIM --epsilon 3 --gnn gcn \
//              --auto-tune --save-model model.ckpt

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/driver_options.h"
#include "core/privim.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "graph/subgraph.h"
#include "im/metrics.h"
#include "im/seed_selection.h"
#include "nn/serialization.h"
#include "shard/pipeline.h"

namespace privim {
namespace {

struct CliOptions {
  std::string dataset = "LastFM";
  std::string edge_list;
  bool undirected = false;
  std::string method = "PrivIM*";
  std::string gnn;
  double epsilon = 2.0;
  size_t k = 50;
  double scale = 1.0;
  std::string diffusion = "exact";
  bool auto_tune = false;
  bool with_celf = true;
  std::string save_model;
  DriverOptions driver;
};

void PrintUsage() {
  std::cout <<
      R"(privim_cli — differentially private influence maximization

  --dataset NAME     synthetic dataset stand-in (Email, Bitcoin, LastFM,
                     HepPh, Facebook, Gowalla, Friendster)  [LastFM]
  --edge-list PATH   load a graph from an edge list instead
  --undirected       treat the edge list as undirected
  --method NAME      PrivIM*, PrivIM, PrivIM+SCS, EGN, HP, HP-GRAT,
                     Non-Private                            [PrivIM*]
  --gnn NAME         backbone override: grat, gat, gcn, sage, gin
  --epsilon X        privacy budget                         [2.0]
  --k N              seed budget                            [50]
  --scale X          synthetic dataset scale multiplier     [1.0]
  --eval-diffusion NAME
                     evaluation model: exact, mc, lt, sis   [exact]
  --diffusion NAME   alias for --eval-diffusion
  --auto-tune        pick (n, M) with the Gamma indicator
  --no-celf          skip the CELF reference (faster)
  --save-model PATH  write the trained model checkpoint
)" << DriverOptions::UsageText()
            << "  --help             this text\n";
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(bool shared,
                            opts.driver.TryParse(argc, argv, i));
    if (shared) continue;
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(arg + " requires a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--dataset") {
      PRIVIM_ASSIGN_OR_RETURN(opts.dataset, next());
    } else if (arg == "--edge-list") {
      PRIVIM_ASSIGN_OR_RETURN(opts.edge_list, next());
    } else if (arg == "--undirected") {
      opts.undirected = true;
    } else if (arg == "--method") {
      PRIVIM_ASSIGN_OR_RETURN(opts.method, next());
    } else if (arg == "--gnn") {
      PRIVIM_ASSIGN_OR_RETURN(opts.gnn, next());
    } else if (arg == "--epsilon") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.epsilon = std::atof(v.c_str());
    } else if (arg == "--k") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.k = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--scale") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.scale = std::atof(v.c_str());
    } else if (arg == "--diffusion" || arg == "--eval-diffusion") {
      PRIVIM_ASSIGN_OR_RETURN(opts.diffusion, next());
    } else if (arg == "--auto-tune") {
      opts.auto_tune = true;
    } else if (arg == "--no-celf") {
      opts.with_celf = false;
    } else if (arg == "--save-model") {
      PRIVIM_ASSIGN_OR_RETURN(opts.save_model, next());
    } else {
      return Status::InvalidArgument("unknown flag " + arg +
                                     " (try --help)");
    }
  }
  if (opts.k == 0) return Status::InvalidArgument("--k must be positive");
  if (opts.epsilon <= 0) {
    return Status::InvalidArgument("--epsilon must be positive");
  }
  PRIVIM_RETURN_NOT_OK(opts.driver.Validate());
  return opts;
}

Status RunCli(const CliOptions& opts) {
  // ---- Load or synthesize the graph and split it. ----
  Graph full;
  std::string source;
  size_t paper_nodes = 0;
  if (!opts.edge_list.empty()) {
    PRIVIM_ASSIGN_OR_RETURN(full,
                            LoadEdgeList(opts.edge_list, opts.undirected));
    source = opts.edge_list;
    paper_nodes = full.num_nodes();
  } else {
    PRIVIM_ASSIGN_OR_RETURN(DatasetId id, ParseDatasetId(opts.dataset));
    Rng gen_rng(opts.driver.seed);
    PRIVIM_ASSIGN_OR_RETURN(full, MakeDataset(id, gen_rng, opts.scale));
    source = GetDatasetSpec(id).name + " (synthetic stand-in)";
    paper_nodes = GetDatasetSpec(id).paper_nodes;
  }
  std::cout << "graph: " << source << " — " << full.num_nodes()
            << " nodes, " << full.num_edges() << " arcs\n";

  Rng split_rng(opts.driver.seed + 1);
  PRIVIM_ASSIGN_OR_RETURN(NodeSplit split,
                          SplitNodes(full.num_nodes(), split_rng));
  PRIVIM_ASSIGN_OR_RETURN(Subgraph train_sub,
                          InduceSubgraph(full, split.train));
  PRIVIM_ASSIGN_OR_RETURN(Subgraph eval_sub,
                          InduceSubgraph(full, split.test));
  if (eval_sub.local.num_nodes() < opts.k) {
    return Status::InvalidArgument("evaluation split smaller than k");
  }

  // ---- Configure. ----
  PRIVIM_ASSIGN_OR_RETURN(Method method, ParseMethod(opts.method));
  PrivImConfig config = MakeDefaultConfig(method, opts.epsilon,
                                          train_sub.local.num_nodes());
  config.seed_count = opts.k;
  config.runtime.num_threads = opts.driver.threads;
  PRIVIM_ASSIGN_OR_RETURN(config.eval_diffusion,
                          ParseEvalDiffusion(opts.diffusion));
  config.checkpoint.dir = opts.driver.checkpoint_dir;
  if (config.eval_diffusion == PrivImConfig::EvalDiffusion::kSis) {
    config.eval_steps = 8;
  }
  if (!opts.gnn.empty()) {
    PRIVIM_ASSIGN_OR_RETURN(config.gnn.type, ParseGnnType(opts.gnn));
  }
  if (opts.auto_tune) {
    AutoTuneSamplingParams(paper_nodes, config);
    std::cout << "indicator-tuned parameters: n = "
              << config.freq.subgraph_size
              << ", M = " << config.freq.frequency_threshold << "\n";
  }

  // ---- Run through the Pipeline facade. ----
  PipelineConfig pipeline_config;
  pipeline_config.method = config;
  pipeline_config.seed = opts.driver.seed;
  pipeline_config.collect_telemetry = !opts.driver.telemetry_path.empty();
  PRIVIM_ASSIGN_OR_RETURN(
      Pipeline pipeline,
      Pipeline::Build(std::move(train_sub.local), std::move(eval_sub.local),
                      std::move(pipeline_config)));
  PRIVIM_ASSIGN_OR_RETURN(
      PipelineRunResult result,
      opts.driver.resume ? pipeline.Resume() : pipeline.Run());
  const PrivImRunResult& run = result.run;

  std::cout << "\nmethod: " << MethodName(method) << " ("
            << GnnTypeName(config.gnn.type) << " backbone)\n";
  if (method != Method::kNonPrivate) {
    std::cout << "privacy: (" << run.epsilon_spent << ", "
              << config.budget.delta << ")-DP node-level; sigma = "
              << run.sigma << ", clip C = " << run.clip_bound_used
              << ", N_g = " << run.occurrence_bound << "\n";
  } else {
    std::cout << "privacy: none (epsilon = inf)\n";
  }
  std::cout << "container: " << run.container_size << " subgraphs ("
            << run.stage1_count << " + " << run.stage2_count
            << "), audited max occurrence " << run.audited_max_occurrence
            << "\n";
  std::cout << "timings: preprocessing " << run.preprocessing_seconds
            << "s, per-epoch " << run.per_epoch_seconds << "s\n";

  std::cout << "\nseeds (" << run.seeds.size() << "):";
  for (size_t i = 0; i < run.seeds.size(); ++i) {
    std::cout << (i == 0 ? " " : ", ") << run.seeds[i];
  }
  std::cout << "\nspread (" << opts.diffusion << " model): " << run.spread
            << "\n";

  if (opts.with_celf &&
      config.eval_diffusion == PrivImConfig::EvalDiffusion::kExactIc) {
    const Graph& eval_graph = pipeline.eval_graph();
    std::vector<NodeId> candidates(eval_graph.num_nodes());
    for (size_t u = 0; u < candidates.size(); ++u) {
      candidates[u] = static_cast<NodeId>(u);
    }
    SpreadOracle oracle = MakeExactUnitOracle(eval_graph, config.eval_steps);
    PRIVIM_ASSIGN_OR_RETURN(SeedSelection celf,
                            CelfSelect(candidates, opts.k, oracle));
    std::cout << "CELF reference: " << celf.spread << " => coverage ratio "
              << FormatDouble(
                     CoverageRatioPercent(run.spread, celf.spread), 2)
              << "%\n";
  }

  if (!opts.save_model.empty()) {
    PRIVIM_RETURN_NOT_OK(SaveModel(*result.model, opts.save_model));
    std::cout << "model checkpoint written to " << opts.save_model << "\n";
  }

  if (pipeline_config.collect_telemetry) {
    std::cout << "\n";
    pipeline.Telemetry().PrintSummary(std::cout);
    PRIVIM_RETURN_NOT_OK(
        pipeline.Telemetry().WriteJsonFile(opts.driver.telemetry_path));
    std::cout << "telemetry written to " << opts.driver.telemetry_path
              << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace privim

int main(int argc, char** argv) {
  auto opts = privim::ParseArgs(argc, argv);
  if (!opts.ok()) {
    std::cerr << opts.status() << "\n";
    return 2;
  }
  privim::Status status = privim::RunCli(*opts);
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
