// privim_shard: run the shared-nothing sharded PrivIM pipeline
// (src/shard/, docs/sharding.md) — partition the train/eval graphs into
// node-disjoint shards, run the full DP pipeline per shard with shard
// k+1's sampling overlapped against shard k's training, and merge the
// per-shard seed sets and privacy ledgers into one global result.
//
//   privim_shard --dataset LastFM --shards 4 --threads 8 --epsilon 2
//   privim_shard --dataset Gowalla --shards 8 --no-overlap   # baseline
//   privim_shard --shards 2 --checkpoint-dir ck/ --resume
//
// With --shards 1 the output is bit-identical (seeds, spread, epsilon) to
// privim_cli on the same seed — tested in tests/shard/.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/driver_options.h"
#include "core/privim.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "graph/subgraph.h"
#include "shard/pipeline.h"

namespace privim {
namespace {

struct ShardCliOptions {
  std::string dataset = "LastFM";
  std::string edge_list;
  bool undirected = false;
  std::string method = "PrivIM*";
  double epsilon = 2.0;
  size_t k = 50;
  double scale = 1.0;
  size_t shards = 2;
  bool overlap = true;
  size_t max_in_flight = 2;
  DriverOptions driver;
};

void PrintUsage() {
  std::cout <<
      R"(privim_shard — shared-nothing sharded PrivIM pipeline

  --dataset NAME     synthetic dataset stand-in (Email, Bitcoin, LastFM,
                     HepPh, Facebook, Gowalla, Friendster)  [LastFM]
  --edge-list PATH   load a graph from an edge list instead
  --undirected       treat the edge list as undirected
  --method NAME      PrivIM*, PrivIM, PrivIM+SCS, EGN, HP, HP-GRAT,
                     Non-Private                            [PrivIM*]
  --epsilon X        privacy budget (per shard; parallel
                     composition makes it the global spend)  [2.0]
  --k N              global seed budget                      [50]
  --scale X          synthetic dataset scale multiplier      [1.0]
  --shards N         node-disjoint partitions (1 = bit-identical
                     to privim_cli)                          [2]
  --no-overlap       serialize the shard stages (timing baseline)
  --max-in-flight N  shards concurrently in flight           [2]
)" << DriverOptions::UsageText()
            << "  --help             this text\n";
}

Result<ShardCliOptions> ParseArgs(int argc, char** argv) {
  ShardCliOptions opts;
  for (int i = 1; i < argc; ++i) {
    PRIVIM_ASSIGN_OR_RETURN(bool shared,
                            opts.driver.TryParse(argc, argv, i));
    if (shared) continue;
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(arg + " requires a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--dataset") {
      PRIVIM_ASSIGN_OR_RETURN(opts.dataset, next());
    } else if (arg == "--edge-list") {
      PRIVIM_ASSIGN_OR_RETURN(opts.edge_list, next());
    } else if (arg == "--undirected") {
      opts.undirected = true;
    } else if (arg == "--method") {
      PRIVIM_ASSIGN_OR_RETURN(opts.method, next());
    } else if (arg == "--epsilon") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.epsilon = std::atof(v.c_str());
    } else if (arg == "--k") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.k = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--scale") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.scale = std::atof(v.c_str());
    } else if (arg == "--shards") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.shards = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--no-overlap") {
      opts.overlap = false;
    } else if (arg == "--max-in-flight") {
      PRIVIM_ASSIGN_OR_RETURN(std::string v, next());
      opts.max_in_flight = static_cast<size_t>(std::atoll(v.c_str()));
    } else {
      return Status::InvalidArgument("unknown flag " + arg +
                                     " (try --help)");
    }
  }
  if (opts.k == 0) return Status::InvalidArgument("--k must be positive");
  if (opts.shards == 0) {
    return Status::InvalidArgument("--shards must be >= 1");
  }
  if (opts.epsilon <= 0) {
    return Status::InvalidArgument("--epsilon must be positive");
  }
  PRIVIM_RETURN_NOT_OK(opts.driver.Validate());
  return opts;
}

Status RunShardCli(const ShardCliOptions& opts) {
  // ---- Graph + 50/50 node split, identical to privim_cli's protocol. ----
  Graph full;
  std::string source;
  if (!opts.edge_list.empty()) {
    PRIVIM_ASSIGN_OR_RETURN(full,
                            LoadEdgeList(opts.edge_list, opts.undirected));
    source = opts.edge_list;
  } else {
    PRIVIM_ASSIGN_OR_RETURN(DatasetId id, ParseDatasetId(opts.dataset));
    Rng gen_rng(opts.driver.seed);
    PRIVIM_ASSIGN_OR_RETURN(full, MakeDataset(id, gen_rng, opts.scale));
    source = GetDatasetSpec(id).name + " (synthetic stand-in)";
  }
  std::cout << "graph: " << source << " — " << full.num_nodes()
            << " nodes, " << full.num_edges() << " arcs\n";

  Rng split_rng(opts.driver.seed + 1);
  PRIVIM_ASSIGN_OR_RETURN(NodeSplit split,
                          SplitNodes(full.num_nodes(), split_rng));
  PRIVIM_ASSIGN_OR_RETURN(Subgraph train_sub,
                          InduceSubgraph(full, split.train));
  PRIVIM_ASSIGN_OR_RETURN(Subgraph eval_sub,
                          InduceSubgraph(full, split.test));

  // ---- Configure and run through the Pipeline facade. ----
  PRIVIM_ASSIGN_OR_RETURN(Method method, ParseMethod(opts.method));
  PipelineConfig config;
  config.method = MakeDefaultConfig(method, opts.epsilon,
                                    train_sub.local.num_nodes());
  config.method.seed_count = opts.k;
  config.method.runtime.num_threads = opts.driver.threads;
  config.method.checkpoint.dir = opts.driver.checkpoint_dir;
  config.seed = opts.driver.seed;
  config.collect_telemetry = !opts.driver.telemetry_path.empty();
  // num_shards >= 1 always takes the sharded path here; privim_cli is the
  // serial front end.
  config.shard.num_shards = opts.shards;
  config.shard.overlap.overlap = opts.overlap;
  config.shard.overlap.max_in_flight = opts.max_in_flight;

  PRIVIM_ASSIGN_OR_RETURN(
      Pipeline pipeline,
      Pipeline::Build(std::move(train_sub.local), std::move(eval_sub.local),
                      std::move(config)));
  PRIVIM_ASSIGN_OR_RETURN(
      PipelineRunResult result,
      opts.driver.resume ? pipeline.Resume() : pipeline.Run());
  const ShardedRunResult& sharded = result.sharded_run;

  std::cout << "method: " << MethodName(method) << ", " << opts.shards
            << " shard" << (opts.shards == 1 ? "" : "s") << ", overlap "
            << (opts.overlap ? "on" : "off") << "\n";
  std::cout << "partition: train " << sharded.train_intra_arcs
            << " intra + " << sharded.train_cut_arcs
            << " cut arcs dropped; eval " << sharded.eval_intra_arcs
            << " intra + " << sharded.eval_cut_arcs << " cut\n";

  TablePrinter table({"Shard", "subgraphs", "extract s", "finish s",
                      "epsilon"});
  for (const ShardOutcome& shard : sharded.shards) {
    table.AddRow(StrFormat("%zu", shard.shard),
                 {static_cast<double>(shard.run.container_size),
                  shard.extract_seconds, shard.finish_seconds,
                  shard.run.epsilon_spent},
                 3);
  }
  table.Print(std::cout);

  std::cout << "\nmerged seeds (" << result.seeds.size() << "):";
  for (size_t i = 0; i < result.seeds.size(); ++i) {
    std::cout << (i == 0 ? " " : ", ") << result.seeds[i];
  }
  std::cout << "\nspread: " << result.spread << "\n";
  if (method != Method::kNonPrivate) {
    std::cout << "privacy: epsilon " << result.epsilon_spent
              << " (parallel composition: max over shards)\n";
  } else {
    std::cout << "privacy: none (epsilon = inf)\n";
  }
  std::cout << "timing: wall " << FormatDouble(sharded.wall_seconds, 3)
            << "s vs serialized stages "
            << FormatDouble(sharded.stage_seconds, 3) << "s ("
            << FormatDouble(
                   sharded.stage_seconds > 0.0
                       ? 100.0 * (1.0 - sharded.wall_seconds /
                                            sharded.stage_seconds)
                       : 0.0,
                   1)
            << "% saved by overlap)\n";

  if (!opts.driver.telemetry_path.empty()) {
    std::cout << "\n";
    pipeline.Telemetry().PrintSummary(std::cout);
    PRIVIM_RETURN_NOT_OK(
        pipeline.Telemetry().WriteJsonFile(opts.driver.telemetry_path));
    std::cout << "telemetry written to " << opts.driver.telemetry_path
              << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace privim

int main(int argc, char** argv) {
  auto opts = privim::ParseArgs(argc, argv);
  if (!opts.ok()) {
    std::cerr << opts.status() << "\n";
    return 2;
  }
  privim::Status status = privim::RunShardCli(*opts);
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
