// Viral marketing scenario (the paper's motivating application): a company
// wants to seed a product campaign with k influencers chosen from a social
// network whose follow-relations are *private*. The graph owner releases
// only a DP-trained seed-scoring model; this example shows the campaign
// quality at different privacy budgets and against naive baselines.

#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/privim.h"
#include "im/metrics.h"
#include "im/seed_selection.h"

int main() {
  using namespace privim;

  // Use the Facebook page-page network stand-in: the advertiser targets
  // k = 40 pages.
  const size_t k = 40;
  Result<DatasetInstance> instance_or =
      PrepareDataset(DatasetId::kFacebook, /*seed=*/11, k);
  if (!instance_or.ok()) {
    std::cerr << instance_or.status() << "\n";
    return 1;
  }
  const DatasetInstance& instance = *instance_or;
  std::cout << "campaign network: " << instance.spec.name << " stand-in, "
            << instance.eval_graph.num_nodes()
            << " candidate pages, budget k = " << k << "\n\n";

  TablePrinter table({"Selection strategy", "Reach (nodes)",
                      "% of CELF optimum", "Privacy"});

  // Non-private oracles the graph owner could NOT legally run for an
  // external advertiser — shown as reference points.
  table.AddRow({"CELF greedy (no privacy)",
                FormatDouble(instance.celf_spread, 0), "100.00", "none"});

  std::vector<NodeId> candidates(instance.eval_graph.num_nodes());
  for (size_t u = 0; u < candidates.size(); ++u) {
    candidates[u] = static_cast<NodeId>(u);
  }
  SpreadOracle oracle = MakeExactUnitOracle(instance.eval_graph, 1);
  Result<SeedSelection> degree =
      DegreeSelect(instance.eval_graph, candidates, k, oracle);
  if (degree.ok()) {
    table.AddRow({"Top-degree heuristic (no privacy)",
                  FormatDouble(degree->spread, 0),
                  FormatDouble(CoverageRatioPercent(degree->spread,
                                                    instance.celf_spread),
                               2),
                  "none"});
  }

  // The DP route: PrivIM* at several budgets.
  for (double eps : {1.0, 3.0, 6.0}) {
    PrivImConfig config = MakeDefaultConfig(
        Method::kPrivImStar, eps, instance.train_graph.num_nodes());
    config.seed_count = k;
    Rng rng(100 + static_cast<uint64_t>(eps));
    Result<PrivImRunResult> run =
        RunMethod(instance.train_graph, instance.eval_graph, config, rng);
    if (!run.ok()) {
      std::cerr << run.status() << "\n";
      return 1;
    }
    table.AddRow({StrFormat("PrivIM* (eps=%.0f)", eps),
                  FormatDouble(run->spread, 0),
                  FormatDouble(CoverageRatioPercent(run->spread,
                                                    instance.celf_spread),
                               2),
                  StrFormat("(%.1f, %.1e)-DP", run->epsilon_spent,
                            config.budget.delta)});
  }

  table.Print(std::cout);
  std::cout << "\nTakeaway: the advertiser keeps most of the campaign "
               "reach while the network owner\ncan prove node-level DP for "
               "every user in the training graph.\n";
  return 0;
}
