// Diffusion-model extensions (the paper's future work, Section VII): the
// same privately trained PrivIM* model scores seeds that are then evaluated
// under Independent Cascade (exact and Monte-Carlo), Linear Threshold, and
// SIS — plus the RR-sketch ground truth for general weighted IC.

#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/privim.h"
#include "graph/generators.h"
#include "im/rr_sets.h"
#include "im/seed_selection.h"

int main() {
  using namespace privim;

  Result<DatasetInstance> instance_or =
      PrepareDataset(DatasetId::kFacebook, /*seed=*/5, /*seed_count=*/30);
  if (!instance_or.ok()) {
    std::cerr << instance_or.status() << "\n";
    return 1;
  }
  const DatasetInstance& instance = *instance_or;
  std::cout << "network: " << instance.spec.name << " stand-in, eval half "
            << instance.eval_graph.num_nodes() << " nodes\n\n";

  // Train one private model and keep its seed set fixed; only the
  // *evaluation* diffusion model changes (post-processing, no extra
  // privacy cost).
  PrivImConfig config = MakeDefaultConfig(
      Method::kPrivImStar, /*epsilon=*/3.0,
      instance.train_graph.num_nodes());
  config.seed_count = 30;
  Rng rng(99);
  Result<PrivImRunResult> run_or =
      RunMethod(instance.train_graph, instance.eval_graph, config, rng);
  if (!run_or.ok()) {
    std::cerr << run_or.status() << "\n";
    return 1;
  }
  const std::vector<NodeId>& seeds = run_or->seeds;

  TablePrinter table({"Diffusion model", "Spread of PrivIM* seeds",
                      "Notes"});
  Rng eval_rng(7);

  // 1. Exact unit-weight IC, j = 1 (the paper's evaluation setting).
  SpreadOracle exact = MakeExactUnitOracle(instance.eval_graph, 1);
  table.AddRow({"IC (w=1, j=1, exact)", FormatDouble(exact(seeds), 1),
                "paper's setting"});

  // 2. Monte-Carlo IC with weighted-cascade probabilities w = 1/indeg.
  Result<Graph> wc_or = WeightedCascade(instance.eval_graph);
  if (!wc_or.ok()) {
    std::cerr << wc_or.status() << "\n";
    return 1;
  }
  SpreadOracle mc =
      MakeMonteCarloOracle(*wc_or, 200, eval_rng).ValueOrDie();
  table.AddRow({"IC (weighted cascade, MC)", FormatDouble(mc(seeds), 1),
                "200 cascades"});

  // 3. RR-sketch estimate on the same weighted graph (scalable unbiased
  //    estimator; also yields an alternative ground-truth seed set).
  Result<RrSketch> sketch_or = RrSketch::Generate(*wc_or, 5000, eval_rng);
  if (!sketch_or.ok()) {
    std::cerr << sketch_or.status() << "\n";
    return 1;
  }
  table.AddRow({"IC (weighted cascade, RR sketch)",
                FormatDouble(sketch_or->EstimateSpread(seeds), 1),
                "5000 RR sets"});

  // 4. Linear Threshold.
  SpreadOracle lt = MakeLtOracle(*wc_or, 200, eval_rng).ValueOrDie();
  table.AddRow({"Linear Threshold (MC)", FormatDouble(lt(seeds), 1),
                "200 cascades"});

  // 5. SIS epidemic, 8 rounds, recovery 0.3.
  SpreadOracle sis =
      MakeSisOracle(*wc_or, 200, 0.3, 8, eval_rng).ValueOrDie();
  table.AddRow({"SIS (MC, 8 rounds)", FormatDouble(sis(seeds), 1),
                "recovery prob 0.3"});

  table.Print(std::cout);

  // How good are the private seeds under the *weighted* objective? Compare
  // with the RR-sketch greedy (the sampling-based ground truth).
  Result<std::vector<NodeId>> ris_or = sketch_or->SelectSeeds(30);
  if (ris_or.ok()) {
    const double private_spread = sketch_or->EstimateSpread(seeds);
    const double ris_spread = sketch_or->EstimateSpread(*ris_or);
    std::cout << "\nRR-sketch greedy reference: " << ris_spread
              << "; private seeds reach "
              << FormatDouble(100.0 * private_spread / ris_spread, 1)
              << "% of it under weighted IC.\n";
  }
  std::cout << "\nThe seed set is computed once under node-level DP; "
               "re-scoring it under other\ndiffusion models is free "
               "post-processing.\n";
  return 0;
}
