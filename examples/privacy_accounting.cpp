// Privacy accounting walkthrough: how PrivIM turns a target (epsilon,
// delta) into a concrete noise scale, and why the dual-stage sampler's
// occurrence cap M is the lever that makes node-level DP affordable for a
// graph-level task.

#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "dp/rdp_accountant.h"
#include "dp/sensitivity.h"

int main() {
  using namespace privim;

  // A typical training run: m = 300 subgraphs, batches of 16, 60
  // iterations, clip bound C = 1.
  DpSgdSpec spec;
  spec.container_size = 300;
  spec.batch_size = 16;
  spec.iterations = 60;
  spec.clip_bound = 1.0;

  std::cout << "Why the naive pipeline drowns in noise (Lemma 1):\n";
  TablePrinter lemma({"theta", "GNN layers r", "N_g = sum theta^i",
                      "sensitivity C*N_g"});
  for (size_t r : {1u, 2u, 3u}) {
    const size_t ng = OccurrenceBoundNaive(10, r);
    lemma.AddRow({"10", StrFormat("%zu", r), StrFormat("%zu", ng),
                  FormatDouble(NodeSensitivity(1.0, ng), 0)});
  }
  lemma.Print(std::cout);
  std::cout << "\nThe dual-stage sampler replaces N_g with the frequency "
               "cap M (Section IV):\n";

  TablePrinter table({"occurrence bound N_g", "sigma for eps=2",
                      "absolute noise stddev sigma*C*N_g",
                      "eps actually spent"});
  for (size_t ng : {2u, 4u, 6u, 10u, 111u, 300u}) {
    DpSgdSpec s = spec;
    s.max_occurrences = ng;
    Result<RdpAccountant> acc_or = RdpAccountant::Create(s);
    if (!acc_or.ok()) {
      std::cerr << acc_or.status() << "\n";
      return 1;
    }
    const PrivacyBudget budget{2.0, 1e-5};
    Result<double> sigma_or = acc_or->CalibrateSigma(budget);
    if (!sigma_or.ok()) {
      std::cerr << sigma_or.status() << "\n";
      return 1;
    }
    const double sigma = *sigma_or;
    table.AddRow({StrFormat("%zu", ng), FormatDouble(sigma, 4),
                  FormatDouble(sigma * NodeSensitivity(1.0, ng), 3),
                  FormatDouble(*acc_or->Epsilon(sigma, budget.delta), 4)});
  }
  table.Print(std::cout);

  std::cout << "\nReading the table: with the naive bound (N_g = 111, "
               "theta=10 r=2) or EGN's worst\ncase (N_g = m = 300), the "
               "absolute noise added to each gradient sum is orders of\n"
               "magnitude above the PrivIM* regime (N_g = M <= 10) — the "
               "quantitative version of the\npaper's Example 2.\n";
  return 0;
}
