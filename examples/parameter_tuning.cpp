// Parameter tuning with the Gamma indicator (Section IV-C): pick the
// subgraph size n and frequency threshold M for a new dataset *without*
// spending privacy budget on a grid search, then verify the pick against a
// small empirical sweep.

#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/indicator.h"
#include "core/privim.h"

int main() {
  using namespace privim;

  // 1. Fit the indicator's shape parameters from "prior experiments":
  //    observed optimal (n, M) on reference datasets (here the paper's
  //    published optima, Appendix H).
  std::vector<IndicatorObservation> n_obs = {
      {1000, 20.0}, {7600, 40.0}, {22500, 60.0}, {196000, 80.0}};
  std::vector<IndicatorObservation> m_obs = {
      {1000, 8.0}, {7600, 4.0}, {22500, 4.0}, {196000, 2.0}};
  Result<IndicatorParams> fit_n = FitIndicatorN(n_obs, /*psi_n=*/25.0);
  if (!fit_n.ok()) {
    std::cerr << fit_n.status() << "\n";
    return 1;
  }
  Result<IndicatorParams> params_or =
      FitIndicatorM(m_obs, /*psi_m=*/5.0, *fit_n);
  if (!params_or.ok()) {
    std::cerr << params_or.status() << "\n";
    return 1;
  }
  const IndicatorParams params = *params_or;
  std::cout << "fitted indicator: k_n=" << params.k_n
            << " b_n=" << params.b_n << " k_M=" << params.k_m
            << " b_M=" << params.b_m << "\n";
  std::cout << "(paper's values:  k_n=0.47 b_n=-1.03 k_M=4.02 b_M=1.22)\n\n";

  // 2. Predict the optimal (n, M) for a "new" dataset — HepPh, 12K nodes
  //    at paper scale.
  const size_t v_new = 12000;
  std::vector<double> n_grid, m_grid;
  for (double n = 10; n <= 80; n += 10) n_grid.push_back(n);
  for (double m = 2; m <= 12; m += 2) m_grid.push_back(m);
  const IndicatorPeak peak =
      FindIndicatorPeak(n_grid, m_grid, v_new, params);
  std::cout << "indicator recommends n=" << peak.n << ", M=" << peak.m
            << " for |V|=" << v_new << "\n\n";

  // 3. Verify against a small empirical sweep on the simulated HepPh.
  Result<DatasetInstance> instance_or =
      PrepareDataset(DatasetId::kHepPh, /*seed=*/13, /*seed_count=*/30);
  if (!instance_or.ok()) {
    std::cerr << instance_or.status() << "\n";
    return 1;
  }
  const DatasetInstance& instance = *instance_or;
  TablePrinter table({"n", "M", "influence spread", "recommended?"});
  double best_spread = -1.0;
  double best_n = 0, best_m = 0;
  for (double n : {20.0, 40.0, 60.0}) {
    for (double m : {2.0, 6.0, 10.0}) {
      PrivImConfig cfg = MakeDefaultConfig(
          Method::kPrivImStar, 3.0, instance.train_graph.num_nodes());
      cfg.seed_count = 30;
      cfg.freq.subgraph_size = static_cast<size_t>(n);
      cfg.freq.frequency_threshold = static_cast<size_t>(m);
      Result<MethodEval> eval = EvaluateMethod(instance, cfg, 1, 17);
      if (!eval.ok()) {
        std::cerr << eval.status() << "\n";
        return 1;
      }
      const bool recommended =
          std::abs(n - peak.n) <= 10 && std::abs(m - peak.m) <= 2;
      table.AddRow({FormatDouble(n, 0), FormatDouble(m, 0),
                    FormatDouble(eval->mean_spread, 1),
                    recommended ? "<== indicator" : ""});
      if (eval->mean_spread > best_spread) {
        best_spread = eval->mean_spread;
        best_n = n;
        best_m = m;
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nempirical best: n=" << best_n << ", M=" << best_m
            << " — the indicator picked a configuration in its "
               "neighborhood without running\nthe private pipeline once.\n";
  return 0;
}
