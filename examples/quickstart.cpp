// Quickstart: train a differentially private GNN for influence
// maximization on a synthetic social network and compare its seed set
// against the CELF ground truth.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--threads=N]
//
// --threads=N parallelizes sampling, per-sample gradients and evaluation
// across N workers; every result below is bit-identical for every N.

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/experiment.h"
#include "core/privim.h"
#include "im/metrics.h"
#include "runtime/runtime.h"

int main(int argc, char** argv) {
  using namespace privim;

  size_t num_threads = 0;  // 0 = global runtime default (PRIVIM_THREADS).
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = static_cast<size_t>(std::atol(argv[i] + 10));
    } else {
      std::cerr << "unknown argument '" << argv[i]
                << "' (supported: --threads=N)\n";
      return 1;
    }
  }

  // 1. Prepare a dataset: synthesizes the LastFM stand-in, splits nodes
  //    50/50 into train/eval halves, and computes the CELF reference on
  //    the eval half (k = 25 seeds, 1-step IC with unit weights).
  Result<DatasetInstance> instance_or =
      PrepareDataset(DatasetId::kLastFm, /*seed=*/7, /*seed_count=*/25);
  if (!instance_or.ok()) {
    std::cerr << "dataset preparation failed: " << instance_or.status()
              << "\n";
    return 1;
  }
  const DatasetInstance& instance = *instance_or;
  std::cout << "dataset: " << instance.spec.name << " ("
            << instance.full.num_nodes() << " nodes, "
            << instance.full.num_edges() << " arcs)\n";
  std::cout << "CELF ground-truth spread on the eval half: "
            << instance.celf_spread << "\n\n";

  // 2. Configure PrivIM* with the paper's defaults and a privacy budget of
  //    (epsilon = 2, delta < 1/|V_train|).
  PrivImConfig config = MakeDefaultConfig(
      Method::kPrivImStar, /*epsilon=*/2.0,
      instance.train_graph.num_nodes());
  config.seed_count = 25;
  config.runtime.num_threads = num_threads;
  std::cout << "worker threads: " << ResolveNumThreads(num_threads)
            << "\n\n";

  // 3. Run the pipeline: dual-stage frequency sampling -> sigma
  //    calibration via the Theorem-3 RDP accountant -> DP-SGD training ->
  //    top-k seed selection on the eval graph.
  Rng rng(42);
  Result<PrivImRunResult> run_or =
      RunMethod(instance.train_graph, instance.eval_graph, config, rng);
  if (!run_or.ok()) {
    std::cerr << "PrivIM run failed: " << run_or.status() << "\n";
    return 1;
  }
  const PrivImRunResult& run = *run_or;

  std::cout << "subgraph container: " << run.container_size
            << " subgraphs (" << run.stage1_count << " SCS + "
            << run.stage2_count << " BES)\n";
  std::cout << "occurrence bound N_g* = " << run.occurrence_bound
            << " (audited max: " << run.audited_max_occurrence << ")\n";
  std::cout << "calibrated noise multiplier sigma = " << run.sigma
            << ", epsilon spent = " << run.epsilon_spent << "\n\n";

  std::cout << "private seed set (" << run.seeds.size() << " nodes):";
  for (size_t i = 0; i < run.seeds.size(); ++i) {
    std::cout << (i == 0 ? " " : ", ") << run.seeds[i];
  }
  std::cout << "\ninfluence spread: " << run.spread << " ("
            << CoverageRatioPercent(run.spread, instance.celf_spread)
            << "% of CELF)\n";
  return 0;
}
